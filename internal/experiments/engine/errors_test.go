package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"acic/internal/faults"
)

func noSleep(time.Duration) {}

func TestGuardConvertsPanicToCellError(t *testing.T) {
	_, err := Guard("app/acic/fdp", false, func() (int, error) {
		panic("boom")
	})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("Guard returned %T, want *CellError", err)
	}
	if ce.Key != "app/acic/fdp" || ce.Gang || ce.Panic != "boom" {
		t.Fatalf("CellError = %+v", ce)
	}
	if len(ce.StackDigest) != 12 || len(ce.Stack) == 0 {
		t.Fatalf("missing stack attribution: digest=%q stack=%d bytes", ce.StackDigest, len(ce.Stack))
	}
	if !strings.Contains(ce.Error(), "cell app/acic/fdp") || !strings.Contains(ce.Error(), ce.StackDigest) {
		t.Fatalf("Error() = %q", ce.Error())
	}
	if ce.Transient() {
		t.Fatal("genuine panic classified transient")
	}
}

func TestGuardGangAttribution(t *testing.T) {
	_, err := Guard("gang:app[4]", true, func() (int, error) { panic(1) })
	var ce *CellError
	if !errors.As(err, &ce) || !ce.Gang {
		t.Fatalf("err = %v, want gang CellError", err)
	}
	if !strings.Contains(ce.Error(), "gang gang:app[4]") {
		t.Fatalf("Error() = %q", ce.Error())
	}
}

func TestGuardPassesThroughValues(t *testing.T) {
	v, err := Guard("k", false, func() (int, error) { return 42, nil })
	if v != 42 || err != nil {
		t.Fatalf("Guard = %d, %v", v, err)
	}
	wantErr := errors.New("plain")
	_, err = Guard("k", false, func() (int, error) { return 0, wantErr })
	if err != wantErr {
		t.Fatalf("Guard rewrote plain error: %v", err)
	}
}

func TestInjectedPanicIsTransient(t *testing.T) {
	if err := faults.Install("panic-cell:every=1"); err != nil {
		t.Fatal(err)
	}
	defer faults.Install("")
	_, err := Guard("k", false, func() (int, error) {
		faults.PanicPoint("test")
		return 0, nil
	})
	if !IsTransient(err) {
		t.Fatalf("injected panic not transient: %v", err)
	}
}

func TestMarkTransient(t *testing.T) {
	base := errors.New("io hiccup")
	err := MarkTransient(base)
	if !IsTransient(err) {
		t.Fatal("MarkTransient not transient")
	}
	if !errors.Is(err, base) {
		t.Fatal("MarkTransient broke error chain")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", err)) {
		t.Fatal("transience lost through wrapping")
	}
	if IsTransient(base) || IsTransient(nil) {
		t.Fatal("IsTransient false positive")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	calls := 0
	v, err, retries := Retry(RetryPolicy{Attempts: 3, Sleep: noSleep}, "k", false, func() (int, error) {
		calls++
		if calls < 3 {
			return 0, MarkTransient(errors.New("flaky"))
		}
		return 7, nil
	})
	if v != 7 || err != nil || retries != 2 || calls != 3 {
		t.Fatalf("Retry = (%d, %v, %d), calls = %d", v, err, retries, calls)
	}
}

func TestRetryDoesNotRetryDeterministicFailures(t *testing.T) {
	calls := 0
	_, err, retries := Retry(RetryPolicy{Attempts: 5, Sleep: noSleep}, "k", false, func() (int, error) {
		calls++
		return 0, errors.New("deterministic")
	})
	if calls != 1 || retries != 0 || err == nil {
		t.Fatalf("deterministic error retried: calls=%d retries=%d err=%v", calls, retries, err)
	}
	calls = 0
	_, err, _ = Retry(RetryPolicy{Attempts: 5, Sleep: noSleep}, "k", false, func() (int, error) {
		calls++
		panic("genuine bug")
	})
	var ce *CellError
	if calls != 1 || !errors.As(err, &ce) {
		t.Fatalf("genuine panic retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	_, err, retries := Retry(RetryPolicy{Attempts: 3, Sleep: noSleep}, "k", false, func() (int, error) {
		calls++
		return 0, MarkTransient(errors.New("always flaky"))
	})
	if calls != 3 || retries != 2 || err == nil {
		t.Fatalf("exhaustion: calls=%d retries=%d err=%v", calls, retries, err)
	}
}

func TestRetryZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	_, _, retries := Retry(RetryPolicy{}, "k", false, func() (int, error) {
		calls++
		return 0, MarkTransient(errors.New("flaky"))
	})
	if calls != 1 || retries != 0 {
		t.Fatalf("zero policy: calls=%d retries=%d", calls, retries)
	}
}

func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{}
	base, cap := time.Millisecond, 100*time.Millisecond
	prev := base
	for i := 0; i < 100; i++ {
		d := p.backoff(base, cap, prev)
		if d < base || d > cap {
			t.Fatalf("backoff %v outside [%v, %v]", d, base, cap)
		}
		if hi := 3 * prev; hi < cap && d > hi {
			t.Fatalf("backoff %v above 3*prev=%v", d, hi)
		}
		prev = d
	}
}

func TestGroupRetriesTransientCompute(t *testing.T) {
	pool := NewPool(2)
	var calls atomic.Int64
	g := NewGroup(pool, func(k string) (int, error) {
		if calls.Add(1) < 3 {
			return 0, MarkTransient(errors.New("flaky"))
		}
		return len(k), nil
	})
	g.Retry = RetryPolicy{Attempts: 3, Sleep: noSleep}
	v, err := g.Get("abcd")
	if v != 4 || err != nil {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if g.Retries() != 2 {
		t.Fatalf("Retries = %d, want 2", g.Retries())
	}
}

func TestGroupPanicFailsOnlyItsKey(t *testing.T) {
	pool := NewPool(2)
	g := NewGroup(pool, func(k string) (int, error) {
		if k == "bad" {
			panic("cell bug")
		}
		return len(k), nil
	})
	err := g.Require("ok", "bad", "fine")
	var ce *CellError
	if !errors.As(err, &ce) || ce.Key != "bad" {
		t.Fatalf("Require = %v, want CellError for bad", err)
	}
	if v, err := g.Get("ok"); v != 2 || err != nil {
		t.Fatalf("healthy key poisoned: %d, %v", v, err)
	}
	if v, err := g.Get("fine"); v != 4 || err != nil {
		t.Fatalf("healthy key poisoned: %d, %v", v, err)
	}
}

func TestPoolEachRecoversPanics(t *testing.T) {
	pool := NewPool(2)
	err := pool.Each(4, func(i int) error {
		if i == 1 {
			panic("task bug")
		}
		return nil
	})
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("Each = %v, want *CellError", err)
	}
	if pool.Running() != 0 {
		t.Fatalf("pool leaked slots: running=%d", pool.Running())
	}
}

func TestPoolGoRecoversPanics(t *testing.T) {
	pool := NewPool(1)
	got := make(chan *CellError, 1)
	pool.OnPanic = func(ce *CellError) { got <- ce }
	pool.Go(func() { panic("stray") })
	select {
	case ce := <-got:
		if ce.Panic != "stray" {
			t.Fatalf("OnPanic got %+v", ce)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnPanic never called")
	}
	// The slot must have been released despite the panic.
	pool.Go(func() {})
}
