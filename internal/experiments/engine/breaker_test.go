package engine

import (
	"errors"
	"testing"
	"time"
)

// fakeClock gives breaker tests a deterministic time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clock.now
	return b, clock
}

var errDet = errors.New("deterministic boom")

// TestBreakerTripsAtThreshold: deterministic failures below the
// threshold keep the key closed; the Nth trips it.
func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.Allow("k") {
			t.Fatalf("closed key refused at fail %d", i)
		}
		b.Record("k", errDet)
		if b.Open("k") {
			t.Fatalf("tripped after only %d failures", i+1)
		}
	}
	b.Record("k", errDet)
	if !b.Open("k") {
		t.Error("not open after threshold deterministic failures")
	}
	if b.Allow("k") {
		t.Error("open key admitted work before cooldown")
	}
	if n := b.OpenCount(); n != 1 {
		t.Errorf("OpenCount = %d, want 1", n)
	}
}

// TestBreakerSuccessResets: a success anywhere in the streak forgets
// the history entirely.
func TestBreakerSuccessResets(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Record("k", errDet)
	b.Record("k", errDet)
	b.Record("k", nil)
	b.Record("k", errDet)
	b.Record("k", errDet)
	if b.Open("k") {
		t.Error("streak survived an intervening success")
	}
}

// TestBreakerTransientNeutral: transient errors never trip the breaker,
// no matter how many arrive — environmental noise is not evidence
// against the cell.
func TestBreakerTransientNeutral(t *testing.T) {
	b, _ := newTestBreaker(2, time.Minute)
	for i := 0; i < 10; i++ {
		b.Record("k", MarkTransient(errors.New("net hiccup")))
	}
	if b.Open("k") {
		t.Error("transient errors tripped the breaker")
	}
	// Nor do they erase a deterministic streak in progress.
	b.Record("k", errDet)
	b.Record("k", MarkTransient(errors.New("net hiccup")))
	b.Record("k", errDet)
	if !b.Open("k") {
		t.Error("transient error reset the deterministic streak")
	}
}

// TestBreakerHalfOpenProbe walks the full open → probe → verdict cycle
// in both directions.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := newTestBreaker(1, time.Minute)
	b.Record("k", errDet)
	if !b.Open("k") {
		t.Fatal("threshold 1 did not trip on first failure")
	}
	if b.Allow("k") {
		t.Fatal("admitted before cooldown")
	}
	clock.advance(time.Minute)
	if !b.Allow("k") {
		t.Fatal("no probe admitted after cooldown")
	}
	// Exactly one probe: a second concurrent request still refuses.
	if b.Allow("k") {
		t.Error("second probe admitted while first in flight")
	}
	// Failed probe re-arms the cooldown from now.
	b.Record("k", errDet)
	if b.Allow("k") {
		t.Error("admitted immediately after failed probe")
	}
	clock.advance(time.Minute)
	if !b.Allow("k") {
		t.Fatal("no probe after second cooldown")
	}
	// Successful probe closes the key for good.
	b.Record("k", nil)
	if b.Open("k") {
		t.Error("open after successful probe")
	}
	if !b.Allow("k") {
		t.Error("closed key refused")
	}
}

// TestBreakerTransientProbe: a probe that dies transiently proved
// nothing — the key stays open but the next Allow may probe again
// without waiting out a whole fresh cooldown.
func TestBreakerTransientProbe(t *testing.T) {
	b, clock := newTestBreaker(1, time.Minute)
	b.Record("k", errDet)
	clock.advance(time.Minute)
	if !b.Allow("k") {
		t.Fatal("no probe after cooldown")
	}
	b.Record("k", MarkTransient(errors.New("worker died")))
	if !b.Open("k") {
		t.Error("transient probe outcome closed the key")
	}
	if !b.Allow("k") {
		t.Error("no immediate re-probe after transient probe outcome")
	}
}

// TestBreakerKeysIndependent: keys trip independently.
func TestBreakerKeysIndependent(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	b.Record("bad", errDet)
	if !b.Open("bad") || b.Open("good") {
		t.Errorf("Open(bad)=%v Open(good)=%v", b.Open("bad"), b.Open("good"))
	}
	if !b.Allow("good") {
		t.Error("unrelated key refused")
	}
}

// TestBreakerDefaults: zero options resolve to the documented defaults.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.threshold != DefaultBreakerThreshold || b.cooldown != DefaultBreakerCooldown {
		t.Errorf("defaults = (%d, %v)", b.threshold, b.cooldown)
	}
}
