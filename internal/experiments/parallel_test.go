package experiments

import (
	"sync/atomic"
	"testing"
	"time"
)

// fig10Slice renders a small Fig10/Fig11 slice with the given worker
// count and returns the exact bytes a tool would print.
func fig10Slice(t *testing.T, workers int, cacheDir string) string {
	t.Helper()
	s := NewSuite(40_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.Workers = workers
	s.CacheDir = cacheDir
	t10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	t11, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	return t10.String() + t11.String()
}

// TestParallelMatchesSerial asserts the engine's core promise: tables are
// byte-identical whether cells run one at a time or many at once. Run with
// -race this also exercises the worker pool, singleflight, and the shared
// workload artifacts under real concurrency.
func TestParallelMatchesSerial(t *testing.T) {
	serial := fig10Slice(t, 1, "")
	for _, workers := range []int{2, 8} {
		if got := fig10Slice(t, workers, ""); got != serial {
			t.Errorf("workers=%d output diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// TestConcurrentRenderers drives several figure renderers against one
// suite from concurrent goroutines (as the bench harness does), checking
// the shared store under -race and that overlapping cell sets are
// deduplicated rather than recomputed.
func TestConcurrentRenderers(t *testing.T) {
	s := NewSuite(40_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.Workers = 4
	done := make(chan error, 3)
	go func() { _, err := s.Fig10(); done <- err }()
	go func() { _, err := s.Fig11(); done <- err }()
	go func() { _, err := s.Fig16(); done <- err }()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Fig10 and Fig11 share an identical plan; Fig16 shares its "acic"
	// cells and adds only "ifilter". The store must hold exactly the
	// deduplicated grid: 2 apps x (baseline + 12 Fig10 schemes + ifilter).
	computed, fromCache, workloads := s.Stats()
	if want := int64(2 * (2 + len(Fig10Schemes))); computed != want {
		t.Errorf("computed %d cells, want %d (dedup across renderers)", computed, want)
	}
	if fromCache != 0 {
		t.Errorf("fromCache = %d without a cache dir", fromCache)
	}
	if workloads != 2 {
		t.Errorf("prepared %d workloads, want 2", workloads)
	}
}

// TestMixedRenderersDoNotDeadlock drives a PrepareAll-based renderer
// (Fig13: workload batch + instrumented sweep) concurrently with
// Require-based renderers on a width-1 pool — the shape that deadlocks if
// a claimed-but-unstarted workload cell can be waited on by the tasks
// holding the pool's only slot.
func TestMixedRenderersDoNotDeadlock(t *testing.T) {
	for i := 0; i < 3; i++ {
		s := NewSuite(30_000)
		s.Apps = []string{"media-streaming", "sibench"}
		s.Workers = 1
		done := make(chan error, 3)
		go func() { _, err := s.Fig13(); done <- err }()
		go func() { _, err := s.Fig10(); done <- err }()
		go func() { _, err := s.Fig16(); done <- err }()
		for j := 0; j < 3; j++ {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(120 * time.Second):
				t.Fatal("mixed renderers deadlocked")
			}
		}
	}
}

// TestPersistentCacheMakesRerunsIncremental renders the same slice twice
// through one on-disk cache directory: the second suite must serve every
// cell from disk and still produce byte-identical output.
func TestPersistentCacheMakesRerunsIncremental(t *testing.T) {
	dir := t.TempDir()
	first := fig10Slice(t, 4, dir)

	s := NewSuite(40_000)
	s.Apps = []string{"media-streaming", "sibench"}
	s.Workers = 4
	s.CacheDir = dir
	var progressCalls atomic.Int64
	s.Progress = func(done, total int, label string) { progressCalls.Add(1) }
	t10, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	t11, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if got := t10.String() + t11.String(); got != first {
		t.Errorf("cached rerun output diverges:\n--- first ---\n%s--- rerun ---\n%s", first, got)
	}
	computed, fromCache, _ := s.Stats()
	if computed != 0 {
		t.Errorf("rerun computed %d cells, want 0 (all from disk)", computed)
	}
	if want := int64(2 * (1 + len(Fig10Schemes))); fromCache != want {
		t.Errorf("rerun served %d cells from cache, want %d", fromCache, want)
	}
	if progressCalls.Load() != fromCache {
		t.Errorf("progress reported %d cells, want %d", progressCalls.Load(), fromCache)
	}
}

// TestCacheKeySeparatesCells guards the persistent-cache key: distinct
// cells and trace lengths must never collide.
func TestCacheKeySeparatesCells(t *testing.T) {
	s := NewSuite(40_000)
	keys := map[string]Cell{}
	for _, c := range []Cell{
		{"media-streaming", "lru", "fdp"},
		{"media-streaming", "lru", "entangling"},
		{"media-streaming", "acic", "fdp"},
		{"sibench", "lru", "fdp"},
	} {
		k := s.cacheKey(c)
		if prev, dup := keys[k]; dup {
			t.Errorf("cells %v and %v share cache key %q", prev, c, k)
		}
		keys[k] = c
	}
	s2 := NewSuite(80_000)
	c := Cell{"media-streaming", "lru", "fdp"}
	if s.cacheKey(c) == s2.cacheKey(c) {
		t.Error("different trace lengths must not share cache keys")
	}
}
