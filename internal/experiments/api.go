package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"acic/internal/api"
	"acic/internal/workload"
)

// Conversions between the suite's Cell and the wire Cell in internal/api.
// The two types are kept distinct on purpose: api must not import the
// experiments layer (it is shared with the engine below it), and the
// suite must not couple its planning types to a wire contract that is
// versioned independently. These two functions are the entire seam.

// API returns the wire form of c.
func (c Cell) API() api.Cell {
	return api.Cell{App: c.App, Scheme: c.Scheme, Prefetcher: c.Prefetcher}
}

// CellFromAPI returns the suite form of a wire cell.
func CellFromAPI(a api.Cell) Cell {
	return Cell{App: a.App, Scheme: a.Scheme, Prefetcher: a.Prefetcher}
}

// CellKey returns the content-addressed result-cache key of c — the
// same string the disk store files the cell's result under (see
// cacheKey). acic-serve derives /v1/cells ETags from it: the key hashes
// everything the result depends on (schema version, config digest,
// workload profile digest, trace length, scheme, prefetcher, warmup,
// sampling), so equal keys imply byte-equal results and any HTTP cache
// layer can trust a 304.
func (s *Suite) CellKey(c Cell) string {
	return s.cacheKey(c)
}

// GridKey digests the suite configuration's entire result space: one
// line per known workload (datacenter and SPEC alike) of the shared
// store-key prefix plus warmup and sampling components — everything
// cacheKey hashes except the scheme × prefetcher coordinates. Two
// suites with equal GridKeys produce byte-identical results for every
// cell and every figure, which is what lets acic-serve use it as the
// ETag seed for /v1/figures/{name}.
func (s *Suite) GridKey() string {
	h := sha256.New()
	apps := append(s.AppNames(), s.SPECNames()...)
	for _, app := range apps {
		p, ok := workload.ByName(app)
		opts := s.options(app)
		fmt.Fprintf(h, "%s|warmup:%g|sample:%s\n",
			storeKeyPrefix(profileDigest(p, ok, app), s.N),
			opts.WarmupFrac, sampleKey(opts.Sample))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
