package experiments

import (
	"fmt"

	"acic/internal/bypass"
	"acic/internal/core"
	"acic/internal/energy"
	"acic/internal/stats"
	"acic/internal/victim"
	"acic/internal/workload"
)

// kb formats bits as kilobytes.
func kb(bits int) string { return fmt.Sprintf("%.4gKB", float64(bits)/8192) }

// Table1 reproduces the storage-overhead breakdown of ACIC (Table I).
func Table1() *stats.Table {
	a := core.New(core.DefaultConfig())
	pc := a.Config().Predictor
	ptEntries := 1 << pc.HistoryBits
	t := &stats.Table{Header: []string{"component", "bits", "size"}}
	filterBits := a.Filter.StorageBits()
	hrtBits := pc.HRTEntries * pc.HistoryBits
	ptBits := ptEntries * pc.CounterBits
	queueBits := ptEntries * pc.QueueSlots * (pc.HistoryBits + 1)
	cshrBits := a.CSHR.StorageBits()
	t.AddRow("i-Filter", filterBits, kb(filterBits))
	t.AddRow("HRT", hrtBits, kb(hrtBits))
	t.AddRow("PT", ptBits, fmt.Sprintf("%dB", ptBits/8))
	t.AddRow("PT update queues", queueBits, fmt.Sprintf("%dB", queueBits/8))
	t.AddRow("CSHR", cshrBits, kb(cshrBits))
	total := a.StorageBits()
	t.AddRow("Total", total, kb(total))
	return t
}

// Table2 lists the simulated core parameters (Table II).
func Table2() *stats.Table {
	t := &stats.Table{Header: []string{"parameter", "value"}}
	t.AddRow("CPU frequency", "4GHz (latencies in core cycles)")
	t.AddRow("Fetch width", "6-wide, 24-entry fetch target queue")
	t.AddRow("Reorder buffer", "352 entries, 6-wide retire")
	t.AddRow("BTB", "8192-entry, 4-way")
	t.AddRow("Branch predictor", "TAGE (4 tagged tables) + 32-deep RAS")
	t.AddRow("L1 I-Cache", "32KB, 8-way, 16 MSHRs, 4-cycle")
	t.AddRow("L1 D-Cache", "48KB (64x12), 5-cycle")
	t.AddRow("L2 unified", "512KB, 8-way, 15-cycle")
	t.AddRow("L3 unified", "2MB, 16-way, 35-cycle")
	t.AddRow("DRAM", "~50ns (200 cycles)")
	return t
}

// Table3 reports each datacenter app's L1i MPKI on the FDP+LRU baseline,
// alongside the paper's measured value for band comparison.
func (s *Suite) Table3() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, []string{Baseline}, "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "MPKI (this repro)", "MPKI (paper)"}}
	for _, app := range apps {
		res := s.res(app, Baseline, "fdp")
		// The paper value comes from the profile, not the prepared
		// workload — don't force trace generation on a fully cached rerun.
		prof, _ := workload.ByName(app)
		t.AddRow(app, fmt.Sprintf("%.1f", res.MPKI()), fmt.Sprintf("%.1f", prof.PaperMPKI))
	}
	return t, nil
}

// Table4 lists each scheme's extra storage requirement (Table IV).
func Table4() *stats.Table {
	t := &stats.Table{Header: []string{"scheme", "strategy", "storage"}}
	add := func(name, kind string, bits int) { t.AddRow(name, kind, kb(bits)) }
	// Replacement policies (per Table IV's published budgets where the
	// structures are modeled above the baseline LRU cache).
	add("srrip", "replacement", 64*8*2)                          // 2-bit RRPV per line
	add("ship", "replacement", 8192*2+64*8*(13+1))               // SHCT + per-line sig/outcome
	add("harmony", "replacement", 2*8192*3+64*8*(3+13+1)+16*256) // predictors + RRPV/sig + vectors
	add("ghrp", "replacement", 3*4096*2+64*8*(16+1))
	add("dsb", "bypass", bypass.NewDSB(bypass.DefaultDSBConfig(64)).StorageBits())
	add("obm", "bypass", bypass.NewOBM(bypass.DefaultOBMConfig()).StorageBits())
	add("vvc", "victim cache", victim.NewVVC(victim.DefaultVVCConfig()).StorageBits())
	add("vc3k", "victim cache", victim.NewVC(48).StorageBits())
	add("vc8k", "victim cache", victim.NewVC(128).StorageBits())
	add("l1i-36k", "larger cache", 64*(58+1+4)+64*64*8) // extra way: tags + 4KB data
	t.AddRow("opt", "replacement", "0KB (oracle)")
	add("opt-bypass", "bypass", core.NewIFilter(16).StorageBits())
	add("acic", "bypass", core.New(core.DefaultConfig()).StorageBits())
	return t
}

// Energy compares chip energy of ACIC against the LRU baseline per app and
// on average (Section III-D: the paper reports a 0.63% average saving).
func (s *Suite) Energy() (*stats.Table, error) {
	apps := s.AppNames()
	if err := s.Require(CrossCells(apps, []string{Baseline, "acic"}, "fdp")...); err != nil {
		return nil, err
	}
	t := &stats.Table{Header: []string{"app", "energy delta"}}
	var deltas []float64
	params := energy.DefaultParams()
	l1iBits := 64 * 8 * (64*8 + 63) // data + metadata per line
	for _, app := range apps {
		base := s.res(app, Baseline, "fdp")
		ac := s.res(app, "acic", "fdp")

		bAcc := energy.NewAccount(params)
		bAcc.SetRun(base.Cycles, base.Instructions)
		bAcc.AddStructure("l1i", l1iBits, base.ICache.Accesses)

		aAcc := energy.NewAccount(params)
		aAcc.SetRun(ac.Cycles, ac.Instructions)
		aAcc.AddStructure("l1i", l1iBits, ac.ICache.Accesses)
		acic := core.New(core.DefaultConfig())
		// ACIC's structures are probed on every fetch (filter + CSHR) and
		// on filter evictions (predictor).
		aAcc.AddStructure("ifilter", acic.Filter.StorageBits(), ac.ICache.Accesses)
		aAcc.AddStructure("cshr", acic.CSHR.StorageBits(), ac.ICache.Accesses)
		aAcc.AddStructure("predictor", acic.Pred.StorageBits(), ac.ICache.Misses)

		d := energy.Delta(bAcc, aAcc)
		deltas = append(deltas, d)
		t.AddRow(app, stats.Percent(d))
	}
	t.AddRow("avg", stats.Percent(stats.Mean(deltas)))
	return t, nil
}
