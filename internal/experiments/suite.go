package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"acic/internal/cache"
	"acic/internal/cpu"
	"acic/internal/experiments/engine"
	"acic/internal/faults"
	"acic/internal/workload"
)

// Cell identifies one simulation the evaluation needs: an application run
// under a scheme and a prefetcher platform (trace length and warmup come
// from the owning Suite). Figures and tables are rendered from a plan of
// cells; the engine executes the deduplicated plan in parallel.
type Cell struct {
	App        string
	Scheme     string
	Prefetcher string
}

func (c Cell) String() string { return c.App + "|" + c.Scheme + "|" + c.Prefetcher }

// CrossCells enumerates the cell grid apps × schemes under one prefetcher.
func CrossCells(apps, schemes []string, prefetcher string) []Cell {
	cells := make([]Cell, 0, len(apps)*len(schemes))
	for _, app := range apps {
		for _, sch := range schemes {
			cells = append(cells, Cell{App: app, Scheme: sch, Prefetcher: prefetcher})
		}
	}
	return cells
}

// Suite plans and executes the simulations behind the paper's tables and
// figures. Workload preparation and (app, scheme, prefetcher) runs are
// memoized with per-key singleflight and executed on a bounded worker
// pool, so figures sharing runs (Fig 10/11/13/16, ...) pay for each
// simulation once and independent cells run in parallel. Renderers first
// declare their cell set (Require / PrepareAll) and then read completed
// results, which keeps output byte-identical across worker counts.
//
// Configure the exported fields before the first figure call; they are
// frozen once the engine spins up.
type Suite struct {
	// N is the trace length in instructions per workload.
	N int
	// Apps restricts the datacenter app list (nil = all ten).
	Apps []string
	// Workers bounds the worker pool (0 = ACIC_WORKERS or GOMAXPROCS).
	Workers int
	// CacheDir enables the persistent result cache in that directory
	// ("" = in-memory only). Entries are keyed by workload profile hash,
	// trace length, scheme, prefetcher, and run options, so reruns of
	// acic-bench / acic-sim recompute only what changed.
	CacheDir string
	// ArtifactDir enables the persistent workload artifact store ("" =
	// in-memory only): each prepare stage (trace, annotated program,
	// successor array, data-latency timeline) persists as a
	// content-addressed artifact keyed like the result cache, so warm
	// reruns skip straight to simulation (see Pipeline). CacheDir and
	// ArtifactDir may point at the same directory — result entries are
	// .json, artifacts .actr.
	ArtifactDir string
	// PrepareWindow, when > 0, streams cold workload preparation in
	// windows of that many instructions (see PipelineConfig.Window): peak
	// prepare memory drops from O(N) instruction records to O(window),
	// artifacts and results stay byte-identical, and a warm artifact store
	// is loaded exactly as in batch mode. 0 keeps the batch prepare.
	PrepareWindow int
	// SampleSets, when > 0, switches every simulation the suite runs into
	// the set-sampled fast mode: only SampleSets of the 64 i-cache sets
	// are simulated (one per stride-sized constituency, SDM methodology)
	// and results are extrapolated back to the whole cache. Exploratory
	// sweeps run roughly 64/SampleSets× less subsystem work per access;
	// DESIGN.md §10 documents the validated error bars. Sampled results
	// are cached under distinct keys (keys.go sampleKey), so one CacheDir
	// safely serves both lanes. 0 (or 64) keeps the byte-identical full
	// reference path. Must be a power of two.
	SampleSets int
	// GangSize, when > 1, turns on gang execution: each Require batch
	// groups its same-app cells — across prefetcher platforms, since the
	// shared Program and its data-latency timeline are prefetcher-
	// independent — and runs every group as a single cpu.Gang simulation,
	// one Program traversal driving all of the group's (scheme,
	// prefetcher) members, instead of one task per cell. Groups are split
	// into chunks of at most GangSize, widened to fill idle pool slots
	// (see submitGangs), so a wide grid still fans out across the worker
	// pool. Results, the per-cell memo, the disk cache, and rendered
	// output are byte-identical to per-cell execution at any GangSize.
	GangSize int
	// GangWindow selects the gang traversal window: 0 runs the fixed
	// cpu.DefaultGangWindow heuristic, AutoGangWindow derives the window
	// from measured member footprints against the host cache budget
	// (MeasuredGangWindow), and any positive value pins it. Windows only
	// affect host-cache behavior, never results or cache keys.
	GangWindow int
	// SampleOffset pins the sampled constituency when SampleSets is
	// active: 0 (the default) derives a per-workload offset from the
	// trace digest — constituency 0 is alignment-biased, see DESIGN.md
	// §10 — and any value in [1, stride) selects that constituency for
	// every workload.
	SampleOffset int
	// Progress, if non-nil, is called after each completed cell with the
	// running done count, the number of cells planned so far, and a
	// human-readable label. Called from worker goroutines.
	Progress func(done, total int, label string)
	// Remote, when non-nil, routes each Require batch's new cells to a
	// distributed executor instead of the local gang scheduler (see the
	// Remote interface in remote.go). Results come back through the
	// shared store, so rendered output stays byte-identical to local
	// execution; transiently failed cells fall back to the local serial
	// ladder.
	Remote Remote
	// Context, when non-nil, cancels work that has not started yet: cells
	// (and gang tasks) check it before simulating and fail with the
	// context's error once it is done. Cells already inside a simulation
	// run to completion — the per-access hot path stays free of
	// cancellation checks — so cancellation drains within one cell's
	// latency. CLIs wire SIGINT/SIGTERM here for graceful shutdown.
	Context context.Context

	once     sync.Once
	pool     *engine.Pool
	pipeline *Pipeline
	results  *engine.Group[Cell, cpu.Result]
	// resultStore is the disk cache behind results (nil without CacheDir),
	// retained so FaultStats can report its quarantine count.
	resultStore *engine.DiskCache[Cell, cpu.Result]
	done        atomic.Int64
	cacheErr    error

	sampleMu sync.Mutex
	samples  map[string]cpu.SampleConfig // per-app sampling config (digest-derived offsets)

	gangRuns     atomic.Int64 // gang tasks that reached simulation
	gangCells    atomic.Int64 // cells produced by gang simulations
	gangMixed    atomic.Int64 // gang runs spanning >1 prefetcher platform
	gangMaxWidth atomic.Int64 // widest gang simulated
	gangWindow   atomic.Int64 // traversal window of the most recent gang run

	gangDegraded  atomic.Int64 // gangs that died whole and degraded to serial
	serialReruns  atomic.Int64 // cells re-run serially by the degradation ladder
	ladderRetries atomic.Int64 // retries spent inside serial reruns
}

// GangStats summarizes the suite's gang scheduling so far: how many gang
// simulations ran, how many cells they produced, how many spanned more
// than one prefetcher platform, the widest gang, and the traversal window
// of the most recent run (uniform across runs unless workloads differ in
// measured footprint under -gang-window auto).
type GangStats struct {
	Gangs    int64
	Cells    int64
	Mixed    int64
	MaxWidth int64
	Window   int64
}

// DefaultTraceLen is the default per-workload instruction count, overridable
// with the ACIC_BENCH_N environment variable. It is scaled well below the
// paper's 500M-1B so the full suite reproduces on a laptop; the structural
// results (orderings, crossovers) are stable from a few hundred thousand
// instructions up.
func DefaultTraceLen() int {
	if s := os.Getenv("ACIC_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 400_000
}

// NewSuite creates a suite with the given trace length (0 = default).
func NewSuite(n int) *Suite {
	if n <= 0 {
		n = DefaultTraceLen()
	}
	return &Suite{N: n}
}

// init spins up the engine on first use.
func (s *Suite) init() {
	s.once.Do(func() {
		// Offset-range and set-count validation is app-independent, so one
		// probe call surfaces any configuration error up front; per-app
		// configs (digest-derived offsets) are then built on demand.
		_, sampleErr := SampleConfigFor(s.SampleSets, s.SampleOffset, "")
		s.pool = engine.NewPool(s.Workers)
		var plErr error
		s.pipeline, plErr = NewPipeline(PipelineConfig{N: s.N, Dir: s.ArtifactDir, Pool: s.pool, Window: s.PrepareWindow})
		s.results = engine.NewGroup(s.pool, s.computeCell)
		s.results.Retry = engine.DefaultRetry()
		if s.CacheDir != "" {
			cache, err := engine.NewDiskCache[Cell, cpu.Result](s.CacheDir, s.cacheKey)
			if err != nil {
				s.cacheErr = err
			} else {
				s.results.Cache = cache
				s.resultStore = cache
			}
		}
		s.cacheErr = errors.Join(s.cacheErr, plErr, sampleErr)
		s.results.OnDone = func(c Cell, fromCache bool, err error) {
			if s.Progress == nil {
				return
			}
			label := c.String()
			if fromCache {
				label += " (cached)"
			}
			if err != nil {
				label += " (error)"
			}
			s.Progress(int(s.done.Add(1)), s.results.Size(), label)
		}
	})
}

// cacheKey canonicalizes everything a cell's result depends on. Its
// prefix is shared with the artifact store (keys.go), so one
// cacheSchemaVersion bump or config edit invalidates both together; the
// trailing sample component keeps sampled and full entries disjoint.
func (s *Suite) cacheKey(c Cell) string {
	p, ok := workload.ByName(c.App)
	opts := s.options(c.App)
	return fmt.Sprintf("%s|scheme:%s|pf:%s|warmup:%g|sample:%s",
		storeKeyPrefix(profileDigest(p, ok, c.App), s.N), c.Scheme, c.Prefetcher,
		opts.WarmupFrac, sampleKey(opts.Sample))
}

// sampleFor returns the app's sampling configuration — the suite's set
// count with the workload's digest-derived constituency offset (or the
// pinned SampleOffset) — memoized because the digest hashes the profile.
// Configuration errors were surfaced by init; here they are logic errors.
func (s *Suite) sampleFor(app string) cpu.SampleConfig {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	if sc, ok := s.samples[app]; ok {
		return sc
	}
	if s.samples == nil { // cacheKey is callable before the engine spins up
		s.samples = make(map[string]cpu.SampleConfig)
	}
	sc, err := SampleConfigFor(s.SampleSets, s.SampleOffset, app)
	if err != nil {
		panic(err)
	}
	s.samples[app] = sc
	return sc
}

// options returns the run options a suite cell of the given app — and
// every instrumented per-app sweep the renderers fan out — executes
// under: the paper defaults plus the suite's sampling mode (per-app, as
// the sampled constituency is derived from the workload digest) and gang
// window policy.
func (s *Suite) options(app string) Options {
	opts := DefaultOptions()
	opts.Sample = s.sampleFor(app)
	opts.GangWindow = s.GangWindow
	return opts
}

// sampleFilter returns the constituency filter the app's suite runs build
// their subsystems under (the zero filter when sampling is off); renderers
// that construct instrumented icache.Configs directly attach it so their
// shared structures scale like the planned cells' do.
func (s *Suite) sampleFilter(app string) cache.SampleFilter { return s.sampleFor(app).Filter() }

// ctxErr reports the suite's cancellation state: non-nil once the
// configured Context is done.
func (s *Suite) ctxErr() error {
	if s.Context == nil {
		return nil
	}
	return s.Context.Err()
}

// computeCell runs one simulation cell. Cells that have not started when
// the suite's Context is cancelled fail with the context error instead of
// simulating.
func (s *Suite) computeCell(c Cell) (cpu.Result, error) {
	if err := s.ctxErr(); err != nil {
		return cpu.Result{}, err
	}
	w, err := s.pipeline.Workload(c.App)
	if err != nil {
		return cpu.Result{}, err
	}
	opts := s.options(c.App)
	opts.Prefetcher = c.Prefetcher
	return Run(w, c.Scheme, opts)
}

// AppNames returns the datacenter application list in paper order.
func (s *Suite) AppNames() []string {
	if s.Apps != nil {
		return s.Apps
	}
	var names []string
	for _, p := range workload.Datacenter() {
		names = append(names, p.Name)
	}
	return names
}

// SPECNames returns the SPEC workload list in paper order.
func (s *Suite) SPECNames() []string {
	var names []string
	for _, p := range workload.SPEC() {
		names = append(names, p.Name)
	}
	return names
}

// PrepareAll prepares the named workloads in parallel through the staged
// artifact pipeline (trace generation, branch annotation, successor
// array, data-latency timeline), memoizing each and loading any stage the
// artifact store already holds.
func (s *Suite) PrepareAll(apps ...string) error {
	s.init()
	return s.pipeline.Require(apps...)
}

// Workload returns the prepared workload for an app, generating on demand.
func (s *Suite) Workload(app string) (*Workload, error) {
	s.init()
	return s.pipeline.Workload(app)
}

// wl returns an already-validated workload; renderers call it after a
// successful PrepareAll/Require, at which point failure is a logic error.
func (s *Suite) wl(app string) *Workload {
	w, err := s.Workload(app)
	if err != nil {
		panic(err)
	}
	return w
}

// Require plans and executes the given cells: duplicates (within the batch
// and against earlier work) are executed once, the rest run in parallel on
// the worker pool. With GangSize > 1 the batch's new cells are first
// grouped into gang tasks (same app, any prefetcher — one Program
// traversal per gang). All cells are attempted; the first error in
// argument order is returned. Renderers call Require before reading
// results so their output does not depend on execution order.
func (s *Suite) Require(cells ...Cell) error {
	s.init()
	switch {
	case s.Remote != nil:
		s.submitRemote(cells)
	case s.GangSize > 1:
		s.submitGangs(cells)
	}
	return s.results.Require(cells...)
}

// submitGangs claims the batch's not-yet-planned cells, groups them by app
// in first-appearance order — prefetcher platforms mix freely within a
// gang, since members share only the read-only Program — and submits one
// pool task per chunk of the packing plan. The packer starts from the
// minimum chunk count each group needs under GangSize and then splits the
// widest chunks while idle pool slots remain (packChunks): with spare
// workers, narrower-but-more gangs fill the pool; with the pool
// saturated, GangSize-wide gangs amortize traversals best. Cells claimed
// here are completed by their gang task; the results.Require that follows
// only waits on them.
func (s *Suite) submitGangs(cells []Cell) {
	claimed := make(map[string][]Cell)
	var order []string
	for _, c := range cells {
		if !s.results.TryClaim(c) {
			continue // computed, in flight, or a duplicate within the batch
		}
		if _, ok := claimed[c.App]; !ok {
			order = append(order, c.App)
		}
		claimed[c.App] = append(claimed[c.App], c)
	}
	sizes := make([]int, len(order))
	for i, app := range order {
		sizes[i] = len(claimed[app])
	}
	// The occupancy snapshot is taken once, before any task launches, so
	// the plan does not react to its own submissions.
	chunks := packChunks(sizes, s.GangSize, s.pool.Idle())
	for i, app := range order {
		for _, gang := range splitBalanced(claimed[app], chunks[i]) {
			s.pool.Go(func() { s.runGangTask(gang) })
		}
	}
}

// packChunks decides how many gang tasks each group's cells split into.
// Every group starts at its minimum — ceil(size/gangSize), the fewest
// chunks that respect the width cap — and while the plan leaves pool
// slots idle, the group whose chunks are currently widest is split once
// more. Deterministic for a given occupancy snapshot; like the window,
// the packing affects only scheduling, never results.
func packChunks(sizes []int, gangSize, idle int) []int {
	chunks := make([]int, len(sizes))
	total := 0
	for i, n := range sizes {
		chunks[i] = (n + gangSize - 1) / gangSize
		total += chunks[i]
	}
	for total < idle {
		widest, width := -1, 1
		for i, n := range sizes {
			if w := (n + chunks[i] - 1) / chunks[i]; w > width {
				widest, width = i, w
			}
		}
		if widest < 0 {
			break // every chunk is a single cell; nothing left to split
		}
		chunks[widest]++
		total++
	}
	return chunks
}

// splitBalanced cuts batch into parts contiguous chunks whose sizes differ
// by at most one, preserving order.
func splitBalanced(batch []Cell, parts int) [][]Cell {
	if parts < 1 {
		parts = 1
	}
	if parts > len(batch) {
		parts = len(batch)
	}
	out := make([][]Cell, 0, parts)
	for start, i := 0, 0; i < parts; i++ {
		end := start + (len(batch)-start)/(parts-i)
		out = append(out, batch[start:end])
		start = end
	}
	return out
}

// runGangTask produces one gang's cells: disk-cached members are fulfilled
// directly, the rest — whatever mix of schemes and prefetcher platforms
// survived the cache — run as a single RunGangCells over the shared
// workload.
//
// Failures walk a degradation ladder rather than failing the gang. A
// panic anywhere in the gang run (the members share one Program
// traversal, so no per-slot result can be trusted) degrades the whole
// gang: every pending cell re-runs serially. A per-slot error with the
// rest of the gang healthy re-runs just that cell serially while the
// survivors' results stand. Serial reruns go through the guarded,
// bounded-retry path (rerunSerial) and deliberately sit at the bottom of
// the ladder — a cell that still fails there fails its figure with a
// typed CellError, never the run. Every cell claimed by this task is
// fulfilled on every path; an unfulfilled claim would deadlock the
// Require waiting on it.
func (s *Suite) runGangTask(gang []Cell) {
	pending := gang[:0:0]
	for _, c := range gang {
		if !s.results.TryCache(c) {
			pending = append(pending, c)
		}
	}
	if len(pending) == 0 {
		return
	}
	if err := s.ctxErr(); err != nil {
		for _, c := range pending {
			s.results.Fulfill(c, cpu.Result{}, err)
		}
		return
	}
	w, err := s.pipeline.Workload(pending[0].App)
	if err != nil {
		for _, c := range pending {
			s.results.Fulfill(c, cpu.Result{}, err)
		}
		return
	}
	opts := s.options(pending[0].App)
	gcells := make([]GangCell, len(pending))
	pfs := make(map[string]bool, 1)
	for i, c := range pending {
		gcells[i] = GangCell{Scheme: c.Scheme, Prefetcher: c.Prefetcher}
		pfs[c.Prefetcher] = true
	}
	results, window, errs, gangErr := s.gangAttempt(w, pending[0].App, gcells, opts)
	if gangErr != nil {
		s.gangDegraded.Add(1)
		for _, c := range pending {
			s.rerunSerial(c)
		}
		return
	}
	s.gangRuns.Add(1)
	s.gangCells.Add(int64(len(pending)))
	if len(pfs) > 1 {
		s.gangMixed.Add(1)
	}
	for old := s.gangMaxWidth.Load(); int64(len(pending)) > old; old = s.gangMaxWidth.Load() {
		if s.gangMaxWidth.CompareAndSwap(old, int64(len(pending))) {
			break
		}
	}
	s.gangWindow.Store(int64(window))
	for i, c := range pending {
		if errs[i] != nil {
			s.rerunSerial(c)
			continue
		}
		s.results.Fulfill(c, results[i], nil)
	}
}

// gangAttempt runs one gang simulation under panic isolation. A non-nil
// error means the gang as a whole produced nothing usable (the caller
// degrades to serial); per-slot construction errors come back in errs
// with the other slots' results intact.
func (s *Suite) gangAttempt(w *Workload, app string, gcells []GangCell, opts Options) ([]cpu.Result, int, []error, error) {
	type gangOut struct {
		results []cpu.Result
		window  int
		errs    []error
	}
	out, err := engine.Guard(fmt.Sprintf("gang:%s[%d]", app, len(gcells)), true, func() (gangOut, error) {
		faults.PanicPoint("gang")
		results, window, errs := RunGangCells(w, gcells, opts)
		return gangOut{results, window, errs}, nil
	})
	return out.results, out.window, out.errs, err
}

// rerunSerial is the bottom rung of the degradation ladder: one cell,
// re-run on its own through the guarded bounded-retry path, then
// fulfilled with whatever came out — a result, or a typed error that
// fails only the figures needing this cell.
func (s *Suite) rerunSerial(c Cell) {
	s.serialReruns.Add(1)
	res, err, retried := engine.Retry(s.results.Retry, c.String(), false, func() (cpu.Result, error) {
		return s.computeCell(c)
	})
	if retried > 0 {
		s.ladderRetries.Add(int64(retried))
	}
	s.results.Fulfill(c, res, err)
}

// GangStats reports the suite's gang scheduling counters so far.
func (s *Suite) GangStats() GangStats {
	return GangStats{
		Gangs:    s.gangRuns.Load(),
		Cells:    s.gangCells.Load(),
		Mixed:    s.gangMixed.Load(),
		MaxWidth: s.gangMaxWidth.Load(),
		Window:   s.gangWindow.Load(),
	}
}

// Result returns the simulation result for (app, scheme) under the given
// prefetcher (any name from Prefetchers()), computing it if needed.
func (s *Suite) Result(app, scheme, prefetcher string) (cpu.Result, error) {
	s.init()
	return s.results.Get(Cell{App: app, Scheme: scheme, Prefetcher: prefetcher})
}

// res returns an already-planned result; renderers call it after a
// successful Require, at which point failure is a logic error.
func (s *Suite) res(app, scheme, prefetcher string) cpu.Result {
	r, err := s.Result(app, scheme, prefetcher)
	if err != nil {
		panic(err)
	}
	return r
}

// SpeedupOver returns cycles(base)/cycles(scheme) for one app.
func (s *Suite) SpeedupOver(app, base, scheme, prefetcher string) (float64, error) {
	if err := s.Require(Cell{app, base, prefetcher}, Cell{app, scheme, prefetcher}); err != nil {
		return 0, err
	}
	return s.speedupOver(app, base, scheme, prefetcher), nil
}

func (s *Suite) speedupOver(app, base, scheme, prefetcher string) float64 {
	return Speedup(s.res(app, base, prefetcher), s.res(app, scheme, prefetcher))
}

// MPKIReductionOver returns the fractional MPKI reduction vs base.
func (s *Suite) MPKIReductionOver(app, base, scheme, prefetcher string) (float64, error) {
	if err := s.Require(Cell{app, base, prefetcher}, Cell{app, scheme, prefetcher}); err != nil {
		return 0, err
	}
	return s.mpkiReductionOver(app, base, scheme, prefetcher), nil
}

func (s *Suite) mpkiReductionOver(app, base, scheme, prefetcher string) float64 {
	return MPKIReduction(s.res(app, base, prefetcher), s.res(app, scheme, prefetcher))
}

// each runs fn(0..n-1) on the worker pool and waits; it powers the
// instrumented per-app sweeps (Fig 3b-style runs that attach callbacks and
// so cannot share plain cells). Results must be written to index-addressed
// slots so rendering order stays deterministic.
func (s *Suite) each(n int, fn func(i int) error) error {
	s.init()
	return s.pool.Each(n, fn)
}

// eachCell flattens a rows × cols instrumented sweep (variant × app,
// mode × app, ...) onto the worker pool; fn writes its outputs to
// caller-owned (row, col)-addressed slots.
func (s *Suite) eachCell(rows, cols int, fn func(row, col int) error) error {
	return s.each(rows*cols, func(i int) error { return fn(i/cols, i%cols) })
}

// CacheError reports whether a persistent store requested via CacheDir or
// ArtifactDir could not be opened (the suite still runs, unpersisted).
// Callers that want persistence to be load-bearing should fail on it.
func (s *Suite) CacheError() error {
	s.init()
	return s.cacheErr
}

// Stats reports engine counters: simulations computed this process,
// results served from the persistent cache, and workloads prepared.
func (s *Suite) Stats() (computed, fromCache, workloads int64) {
	s.init()
	return s.results.Computed(), s.results.CacheHits(), s.pipeline.WorkloadsPrepared()
}

// PrepareStats reports the artifact pipeline's per-stage counters (see
// Pipeline.Stats): artifacts regenerated this process vs. loaded from the
// store. On a warm store every stage shows zero regenerations.
func (s *Suite) PrepareStats() []StageStats {
	s.init()
	return s.pipeline.Stats()
}
