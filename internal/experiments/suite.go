package experiments

import (
	"fmt"
	"os"
	"strconv"

	"acic/internal/cpu"
	"acic/internal/workload"
)

// Suite memoizes workloads and (workload, scheme, prefetcher) simulation
// results so that the many figures sharing runs (Fig 10/11/13/16, ...) pay
// for each simulation once.
type Suite struct {
	// N is the trace length in instructions per workload.
	N int
	// Apps restricts the datacenter app list (nil = all ten).
	Apps []string

	workloads map[string]*Workload
	results   map[string]cpu.Result
}

// DefaultTraceLen is the default per-workload instruction count, overridable
// with the ACIC_BENCH_N environment variable. It is scaled well below the
// paper's 500M-1B so the full suite reproduces on a laptop; the structural
// results (orderings, crossovers) are stable from a few hundred thousand
// instructions up.
func DefaultTraceLen() int {
	if s := os.Getenv("ACIC_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 400_000
}

// NewSuite creates a suite with the given trace length (0 = default).
func NewSuite(n int) *Suite {
	if n <= 0 {
		n = DefaultTraceLen()
	}
	return &Suite{
		N:         n,
		workloads: make(map[string]*Workload),
		results:   make(map[string]cpu.Result),
	}
}

// AppNames returns the datacenter application list in paper order.
func (s *Suite) AppNames() []string {
	if s.Apps != nil {
		return s.Apps
	}
	var names []string
	for _, p := range workload.Datacenter() {
		names = append(names, p.Name)
	}
	return names
}

// SPECNames returns the SPEC workload list in paper order.
func (s *Suite) SPECNames() []string {
	var names []string
	for _, p := range workload.SPEC() {
		names = append(names, p.Name)
	}
	return names
}

// Workload returns the prepared workload for an app, generating on demand.
func (s *Suite) Workload(name string) *Workload {
	if w, ok := s.workloads[name]; ok {
		return w
	}
	prof, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown workload %q", name))
	}
	w := Prepare(prof, s.N)
	s.workloads[name] = w
	return w
}

// Result returns the memoized simulation result for (app, scheme) under
// the given prefetcher ("fdp", "entangling", "none").
func (s *Suite) Result(app, scheme, prefetcher string) cpu.Result {
	key := app + "|" + scheme + "|" + prefetcher
	if r, ok := s.results[key]; ok {
		return r
	}
	w := s.Workload(app)
	opts := DefaultOptions()
	opts.Prefetcher = prefetcher
	r, err := Run(w, scheme, opts)
	if err != nil {
		panic(err)
	}
	s.results[key] = r
	return r
}

// SpeedupOver returns cycles(base)/cycles(scheme) for one app.
func (s *Suite) SpeedupOver(app, base, scheme, prefetcher string) float64 {
	b := s.Result(app, base, prefetcher)
	v := s.Result(app, scheme, prefetcher)
	return Speedup(b, v)
}

// MPKIReductionOver returns the fractional MPKI reduction vs base.
func (s *Suite) MPKIReductionOver(app, base, scheme, prefetcher string) float64 {
	b := s.Result(app, base, prefetcher)
	v := s.Result(app, scheme, prefetcher)
	return MPKIReduction(b, v)
}
