package experiments

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"acic/internal/cache"
	"acic/internal/cpu"
	"acic/internal/experiments/engine"
	"acic/internal/workload"
)

// Cell identifies one simulation the evaluation needs: an application run
// under a scheme and a prefetcher platform (trace length and warmup come
// from the owning Suite). Figures and tables are rendered from a plan of
// cells; the engine executes the deduplicated plan in parallel.
type Cell struct {
	App        string
	Scheme     string
	Prefetcher string
}

func (c Cell) String() string { return c.App + "|" + c.Scheme + "|" + c.Prefetcher }

// CrossCells enumerates the cell grid apps × schemes under one prefetcher.
func CrossCells(apps, schemes []string, prefetcher string) []Cell {
	cells := make([]Cell, 0, len(apps)*len(schemes))
	for _, app := range apps {
		for _, sch := range schemes {
			cells = append(cells, Cell{App: app, Scheme: sch, Prefetcher: prefetcher})
		}
	}
	return cells
}

// Suite plans and executes the simulations behind the paper's tables and
// figures. Workload preparation and (app, scheme, prefetcher) runs are
// memoized with per-key singleflight and executed on a bounded worker
// pool, so figures sharing runs (Fig 10/11/13/16, ...) pay for each
// simulation once and independent cells run in parallel. Renderers first
// declare their cell set (Require / PrepareAll) and then read completed
// results, which keeps output byte-identical across worker counts.
//
// Configure the exported fields before the first figure call; they are
// frozen once the engine spins up.
type Suite struct {
	// N is the trace length in instructions per workload.
	N int
	// Apps restricts the datacenter app list (nil = all ten).
	Apps []string
	// Workers bounds the worker pool (0 = ACIC_WORKERS or GOMAXPROCS).
	Workers int
	// CacheDir enables the persistent result cache in that directory
	// ("" = in-memory only). Entries are keyed by workload profile hash,
	// trace length, scheme, prefetcher, and run options, so reruns of
	// acic-bench / acic-sim recompute only what changed.
	CacheDir string
	// ArtifactDir enables the persistent workload artifact store ("" =
	// in-memory only): each prepare stage (trace, annotated program,
	// successor array, data-latency timeline) persists as a
	// content-addressed artifact keyed like the result cache, so warm
	// reruns skip straight to simulation (see Pipeline). CacheDir and
	// ArtifactDir may point at the same directory — result entries are
	// .json, artifacts .actr.
	ArtifactDir string
	// SampleSets, when > 0, switches every simulation the suite runs into
	// the set-sampled fast mode: only SampleSets of the 64 i-cache sets
	// are simulated (one per stride-sized constituency, SDM methodology)
	// and results are extrapolated back to the whole cache. Exploratory
	// sweeps run roughly 64/SampleSets× less subsystem work per access;
	// DESIGN.md §10 documents the validated error bars. Sampled results
	// are cached under distinct keys (keys.go sampleKey), so one CacheDir
	// safely serves both lanes. 0 (or 64) keeps the byte-identical full
	// reference path. Must be a power of two.
	SampleSets int
	// GangSize, when > 1, turns on gang execution: each Require batch
	// groups its same-(app, prefetcher) cells and runs every group as a
	// single cpu.Gang simulation — one Program traversal driving all of
	// the group's schemes — instead of one task per cell. Groups larger
	// than GangSize are split into chunks of at most GangSize (in batch
	// order), so a wide grid still fans out across the worker pool.
	// Results, the per-cell memo, the disk cache, and rendered output are
	// byte-identical to per-cell execution at any GangSize.
	GangSize int
	// Progress, if non-nil, is called after each completed cell with the
	// running done count, the number of cells planned so far, and a
	// human-readable label. Called from worker goroutines.
	Progress func(done, total int, label string)

	once     sync.Once
	pool     *engine.Pool
	pipeline *Pipeline
	results  *engine.Group[Cell, cpu.Result]
	done     atomic.Int64
	sample   cpu.SampleConfig
	cacheErr error
}

// DefaultTraceLen is the default per-workload instruction count, overridable
// with the ACIC_BENCH_N environment variable. It is scaled well below the
// paper's 500M-1B so the full suite reproduces on a laptop; the structural
// results (orderings, crossovers) are stable from a few hundred thousand
// instructions up.
func DefaultTraceLen() int {
	if s := os.Getenv("ACIC_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 400_000
}

// NewSuite creates a suite with the given trace length (0 = default).
func NewSuite(n int) *Suite {
	if n <= 0 {
		n = DefaultTraceLen()
	}
	return &Suite{N: n}
}

// init spins up the engine on first use.
func (s *Suite) init() {
	s.once.Do(func() {
		var sampleErr error
		s.sample, sampleErr = SampleConfigForSets(s.SampleSets)
		s.pool = engine.NewPool(s.Workers)
		var plErr error
		s.pipeline, plErr = NewPipeline(PipelineConfig{N: s.N, Dir: s.ArtifactDir, Pool: s.pool})
		s.results = engine.NewGroup(s.pool, s.computeCell)
		if s.CacheDir != "" {
			cache, err := engine.NewDiskCache[Cell, cpu.Result](s.CacheDir, s.cacheKey)
			if err != nil {
				s.cacheErr = err
			} else {
				s.results.Cache = cache
			}
		}
		s.cacheErr = errors.Join(s.cacheErr, plErr, sampleErr)
		s.results.OnDone = func(c Cell, fromCache bool, err error) {
			if s.Progress == nil {
				return
			}
			label := c.String()
			if fromCache {
				label += " (cached)"
			}
			if err != nil {
				label += " (error)"
			}
			s.Progress(int(s.done.Add(1)), s.results.Size(), label)
		}
	})
}

// cacheKey canonicalizes everything a cell's result depends on. Its
// prefix is shared with the artifact store (keys.go), so one
// cacheSchemaVersion bump or config edit invalidates both together; the
// trailing sample component keeps sampled and full entries disjoint.
func (s *Suite) cacheKey(c Cell) string {
	p, ok := workload.ByName(c.App)
	opts := s.options()
	return fmt.Sprintf("%s|scheme:%s|pf:%s|warmup:%g|sample:%s",
		storeKeyPrefix(profileDigest(p, ok, c.App), s.N), c.Scheme, c.Prefetcher,
		opts.WarmupFrac, sampleKey(opts.Sample))
}

// options returns the run options every suite cell — and every
// instrumented per-app sweep the renderers fan out — executes under:
// the paper defaults plus the suite's sampling mode.
func (s *Suite) options() Options {
	opts := DefaultOptions()
	opts.Sample = s.sample
	return opts
}

// sampleFilter returns the constituency filter suite runs build their
// subsystems under (the zero filter when sampling is off); renderers that
// construct instrumented icache.Configs directly attach it so their
// shared structures scale like the planned cells' do.
func (s *Suite) sampleFilter() cache.SampleFilter { return s.sample.Filter() }

// computeCell runs one simulation cell.
func (s *Suite) computeCell(c Cell) (cpu.Result, error) {
	w, err := s.pipeline.Workload(c.App)
	if err != nil {
		return cpu.Result{}, err
	}
	opts := s.options()
	opts.Prefetcher = c.Prefetcher
	return Run(w, c.Scheme, opts)
}

// AppNames returns the datacenter application list in paper order.
func (s *Suite) AppNames() []string {
	if s.Apps != nil {
		return s.Apps
	}
	var names []string
	for _, p := range workload.Datacenter() {
		names = append(names, p.Name)
	}
	return names
}

// SPECNames returns the SPEC workload list in paper order.
func (s *Suite) SPECNames() []string {
	var names []string
	for _, p := range workload.SPEC() {
		names = append(names, p.Name)
	}
	return names
}

// PrepareAll prepares the named workloads in parallel through the staged
// artifact pipeline (trace generation, branch annotation, successor
// array, data-latency timeline), memoizing each and loading any stage the
// artifact store already holds.
func (s *Suite) PrepareAll(apps ...string) error {
	s.init()
	return s.pipeline.Require(apps...)
}

// Workload returns the prepared workload for an app, generating on demand.
func (s *Suite) Workload(app string) (*Workload, error) {
	s.init()
	return s.pipeline.Workload(app)
}

// wl returns an already-validated workload; renderers call it after a
// successful PrepareAll/Require, at which point failure is a logic error.
func (s *Suite) wl(app string) *Workload {
	w, err := s.Workload(app)
	if err != nil {
		panic(err)
	}
	return w
}

// Require plans and executes the given cells: duplicates (within the batch
// and against earlier work) are executed once, the rest run in parallel on
// the worker pool. With GangSize > 1 the batch's new cells are first
// grouped into gang tasks (same app, same prefetcher — one Program
// traversal per gang). All cells are attempted; the first error in
// argument order is returned. Renderers call Require before reading
// results so their output does not depend on execution order.
func (s *Suite) Require(cells ...Cell) error {
	s.init()
	if s.GangSize > 1 {
		s.submitGangs(cells)
	}
	return s.results.Require(cells...)
}

// submitGangs claims the batch's not-yet-planned cells, groups them by
// (app, prefetcher) in first-appearance order, splits each group into
// chunks of at most GangSize, and submits one pool task per chunk. Cells
// claimed here are completed by their gang task; the results.Require that
// follows only waits on them.
func (s *Suite) submitGangs(cells []Cell) {
	type group struct{ app, pf string }
	claimed := make(map[group][]Cell)
	var order []group
	for _, c := range cells {
		if !s.results.TryClaim(c) {
			continue // computed, in flight, or a duplicate within the batch
		}
		g := group{c.App, c.Prefetcher}
		if _, ok := claimed[g]; !ok {
			order = append(order, g)
		}
		claimed[g] = append(claimed[g], c)
	}
	for _, g := range order {
		batch := claimed[g]
		for start := 0; start < len(batch); start += s.GangSize {
			gang := batch[start:min(start+s.GangSize, len(batch))]
			s.pool.Go(func() { s.runGangTask(gang) })
		}
	}
}

// runGangTask produces one gang's cells: disk-cached members are fulfilled
// directly, the rest run as a single RunGang over the shared workload.
func (s *Suite) runGangTask(gang []Cell) {
	pending := gang[:0:0]
	for _, c := range gang {
		if !s.results.TryCache(c) {
			pending = append(pending, c)
		}
	}
	if len(pending) == 0 {
		return
	}
	w, err := s.pipeline.Workload(pending[0].App)
	if err != nil {
		for _, c := range pending {
			s.results.Fulfill(c, cpu.Result{}, err)
		}
		return
	}
	opts := s.options()
	opts.Prefetcher = pending[0].Prefetcher
	schemes := make([]string, len(pending))
	for i, c := range pending {
		schemes[i] = c.Scheme
	}
	results, errs := RunGang(w, schemes, opts)
	for i, c := range pending {
		s.results.Fulfill(c, results[i], errs[i])
	}
}

// Result returns the simulation result for (app, scheme) under the given
// prefetcher (any name from Prefetchers()), computing it if needed.
func (s *Suite) Result(app, scheme, prefetcher string) (cpu.Result, error) {
	s.init()
	return s.results.Get(Cell{App: app, Scheme: scheme, Prefetcher: prefetcher})
}

// res returns an already-planned result; renderers call it after a
// successful Require, at which point failure is a logic error.
func (s *Suite) res(app, scheme, prefetcher string) cpu.Result {
	r, err := s.Result(app, scheme, prefetcher)
	if err != nil {
		panic(err)
	}
	return r
}

// SpeedupOver returns cycles(base)/cycles(scheme) for one app.
func (s *Suite) SpeedupOver(app, base, scheme, prefetcher string) (float64, error) {
	if err := s.Require(Cell{app, base, prefetcher}, Cell{app, scheme, prefetcher}); err != nil {
		return 0, err
	}
	return s.speedupOver(app, base, scheme, prefetcher), nil
}

func (s *Suite) speedupOver(app, base, scheme, prefetcher string) float64 {
	return Speedup(s.res(app, base, prefetcher), s.res(app, scheme, prefetcher))
}

// MPKIReductionOver returns the fractional MPKI reduction vs base.
func (s *Suite) MPKIReductionOver(app, base, scheme, prefetcher string) (float64, error) {
	if err := s.Require(Cell{app, base, prefetcher}, Cell{app, scheme, prefetcher}); err != nil {
		return 0, err
	}
	return s.mpkiReductionOver(app, base, scheme, prefetcher), nil
}

func (s *Suite) mpkiReductionOver(app, base, scheme, prefetcher string) float64 {
	return MPKIReduction(s.res(app, base, prefetcher), s.res(app, scheme, prefetcher))
}

// each runs fn(0..n-1) on the worker pool and waits; it powers the
// instrumented per-app sweeps (Fig 3b-style runs that attach callbacks and
// so cannot share plain cells). Results must be written to index-addressed
// slots so rendering order stays deterministic.
func (s *Suite) each(n int, fn func(i int) error) error {
	s.init()
	return s.pool.Each(n, fn)
}

// eachCell flattens a rows × cols instrumented sweep (variant × app,
// mode × app, ...) onto the worker pool; fn writes its outputs to
// caller-owned (row, col)-addressed slots.
func (s *Suite) eachCell(rows, cols int, fn func(row, col int) error) error {
	return s.each(rows*cols, func(i int) error { return fn(i/cols, i%cols) })
}

// CacheError reports whether a persistent store requested via CacheDir or
// ArtifactDir could not be opened (the suite still runs, unpersisted).
// Callers that want persistence to be load-bearing should fail on it.
func (s *Suite) CacheError() error {
	s.init()
	return s.cacheErr
}

// Stats reports engine counters: simulations computed this process,
// results served from the persistent cache, and workloads prepared.
func (s *Suite) Stats() (computed, fromCache, workloads int64) {
	s.init()
	return s.results.Computed(), s.results.CacheHits(), s.pipeline.WorkloadsPrepared()
}

// PrepareStats reports the artifact pipeline's per-stage counters (see
// Pipeline.Stats): artifacts regenerated this process vs. loaded from the
// store. On a warm store every stage shows zero regenerations.
func (s *Suite) PrepareStats() []StageStats {
	s.init()
	return s.pipeline.Stats()
}
