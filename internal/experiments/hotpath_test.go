package experiments

import (
	"testing"

	"acic/internal/bypass"
	"acic/internal/icache"
	"acic/internal/policy"
	"acic/internal/workload"
)

// TestSuccessorArrayEquivalence pins the hot-path data layout end to end:
// the oracle schemes simulated with the successor array attached (carried
// per-line and per-filter-slot next-use metadata, O(1) self-next reads)
// must produce exactly the same cpu.Result as the same schemes running on
// oracle-closure fallback queries alone. Any drift in the carried-metadata
// invariants (staleness on hit/fill, filter victim carry, lazy prefetch
// resolution) shows up as a cycle or miss-count difference here.
func TestSuccessorArrayEquivalence(t *testing.T) {
	for _, app := range []string{"media-streaming", "data-caching", "wikipedia"} {
		prof, ok := workload.ByName(app)
		if !ok {
			t.Fatalf("unknown workload %q", app)
		}
		w := Prepare(prof, 200_000)
		build := func(scheme string, withArray bool) icache.Subsystem {
			c := icache.Config{Sets: 64, Ways: 8, NextUse: w.Oracle.Func()}
			switch scheme {
			case "opt":
				c.Policy = policy.NewOPT()
			case "opt-bypass":
				c.Policy = policy.NewLRU()
				c.FilterSlots = 16
				c.Bypass = bypass.OPTBypass{}
			}
			if withArray {
				c.NextAt = w.NextAt
			}
			return icache.MustNew(c)
		}
		for _, scheme := range []string{"opt", "opt-bypass"} {
			for _, pf := range []string{"none", "fdp"} {
				opts := DefaultOptions()
				opts.Prefetcher = pf
				fast, err := RunSubsystem(w, build(scheme, true), opts)
				if err != nil {
					t.Fatal(err)
				}
				slow, err := RunSubsystem(w, build(scheme, false), opts)
				if err != nil {
					t.Fatal(err)
				}
				if fast != slow {
					t.Errorf("%s/%s/%s: successor-array result %+v != oracle-fallback result %+v",
						app, scheme, pf, fast, slow)
				}
			}
		}
	}
}
