package experiments

import (
	"fmt"

	"acic/internal/faults"
)

// FaultStats aggregates the suite's fault handling: what the injector
// fired (zero without -fault-spec) and what the engine absorbed —
// retries, gang degradations, serial reruns, stream fallbacks, and
// quarantined store entries. Every field counts recovery work; results
// themselves stay byte-identical to a fault-free run, which is the
// invariant CI's fault smoke pins.
type FaultStats struct {
	// Spec is the installed fault spec ("" = no injection).
	Spec string `json:"spec,omitempty"`
	// InjectedIOErrs / InjectedCorruptions / InjectedPanics /
	// InjectedNetErrs count the faults the injector fired process-wide.
	InjectedIOErrs      int64 `json:"injected_io_errs"`
	InjectedCorruptions int64 `json:"injected_corruptions"`
	InjectedPanics      int64 `json:"injected_panics"`
	InjectedNetErrs     int64 `json:"injected_net_errs"`
	// Retries counts extra compute attempts spent recovering transient
	// failures across the result group, the pipeline stages, and the
	// serial-rerun ladder.
	Retries int64 `json:"retries"`
	// GangDegraded counts gang runs that died whole and degraded to
	// serial; SerialReruns counts the individual cells the ladder re-ran
	// (members of degraded gangs plus per-slot failures).
	GangDegraded int64 `json:"gang_degraded"`
	SerialReruns int64 `json:"serial_reruns"`
	// StreamFallbacks counts streamed prepares that failed mid-window and
	// fell back to batch.
	StreamFallbacks int64 `json:"stream_fallbacks"`
	// Quarantined counts undecodable store entries moved to quarantine/.
	Quarantined int64 `json:"quarantined"`
}

// Any reports whether any fault activity — injected or absorbed — was
// recorded.
func (f FaultStats) Any() bool {
	return f.InjectedIOErrs != 0 || f.InjectedCorruptions != 0 || f.InjectedPanics != 0 ||
		f.InjectedNetErrs != 0 || f.Retries != 0 || f.GangDegraded != 0 ||
		f.SerialReruns != 0 || f.StreamFallbacks != 0 || f.Quarantined != 0
}

// Recovered totals the recovery work the engine spent absorbing faults
// — retries, degraded gangs, serial reruns, stream fallbacks, and
// quarantines. acic-serve charges this total against per-request fault
// budgets: a request whose service consumed excessive recovery work is
// refused (CodeFaultBudget) rather than allowed to mask a degrading
// store or injector behind ever-slower answers.
func (f FaultStats) Recovered() int64 {
	return f.Retries + f.GangDegraded + f.SerialReruns + f.StreamFallbacks + f.Quarantined
}

// String renders the single-line summary -progress and the bench tier
// print, e.g.
//
//	faults: injected 12 io / 3 corrupt / 5 panic / 4 net; recovered 5 retries, 2 gang-degraded, 9 serial-reruns, 1 stream-fallback, 3 quarantined
func (f FaultStats) String() string {
	return fmt.Sprintf("faults: injected %d io / %d corrupt / %d panic / %d net; recovered %d retries, %d gang-degraded, %d serial-reruns, %d stream-fallbacks, %d quarantined",
		f.InjectedIOErrs, f.InjectedCorruptions, f.InjectedPanics, f.InjectedNetErrs,
		f.Retries, f.GangDegraded, f.SerialReruns, f.StreamFallbacks, f.Quarantined)
}

// FaultStats reports the suite's fault handling so far. Injector counts
// are process-wide (the injector is installed globally); engine counts
// are this suite's.
func (s *Suite) FaultStats() FaultStats {
	s.init()
	snap := faults.Snapshot()
	fs := FaultStats{
		Spec:                snap.Spec,
		InjectedIOErrs:      snap.IOErrs,
		InjectedCorruptions: snap.Corruptions,
		InjectedPanics:      snap.Panics,
		InjectedNetErrs:     snap.NetErrs,
		Retries:             s.results.Retries() + s.pipeline.Retries() + s.ladderRetries.Load(),
		GangDegraded:        s.gangDegraded.Load(),
		SerialReruns:        s.serialReruns.Load(),
		StreamFallbacks:     s.pipeline.StreamFallbacks(),
		Quarantined:         s.pipeline.Quarantined(),
	}
	if s.resultStore != nil {
		fs.Quarantined += s.resultStore.Quarantined()
	}
	return fs
}
