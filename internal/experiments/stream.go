package experiments

import (
	"fmt"

	"acic/internal/analysis"
	"acic/internal/cpu"
	"acic/internal/experiments/engine"
	"acic/internal/faults"
	"acic/internal/trace"
	"acic/internal/workload"
)

// storeWarm reports whether every stage artifact for app already exists on
// disk, in which case the batch load path is both cheapest and provably
// identical. Existence is a routing hint only — if any entry turns out
// corrupt, the batch path's Load treats it as a miss and regenerates.
func (pl *Pipeline) storeWarm(app string) bool {
	return pl.traceStore != nil &&
		pl.traceStore.Has(app) && pl.programStore.Has(app) &&
		pl.nextatStore.Has(app) && pl.datalatStore.Has(app)
}

// assembleStreamed is the fused cold-prepare pass: one windowed walk
// drives generation (workload.GenerateStream), branch annotation and
// descriptor/latency derivation (cpu.ProgramBuilder), the successor array
// (analysis.NextUseBuilder), and — when a store is configured — the trace
// artifact, written section by section through a ContainerWriter so the
// full instruction image never exists in memory. Peak residency is
// O(window) Inst records plus the per-instruction byte/array state the
// simulator needs anyway.
//
// Every artifact this writes is byte-identical to the batch path's: the
// generator, the front end, and the data hierarchy are all sequential
// state machines, so per-window feeding equals the whole-trace pass, and
// the forward last-seen patching in NextUseBuilder equals the backward
// NextUseArray sweep (pinned by the per-layer differential tests and
// TestPipelineStreamedMatchesBatch).
//
// The stage groups are deliberately not involved: their compute functions
// are whole-trace by construction, and Fulfill-ing them would require the
// materialized instruction slice this path exists to avoid. Their
// counters therefore stay zero in streamed mode; Stats reports a separate
// "streamed" row instead.
func (pl *Pipeline) assembleStreamed(app string, prof workload.Profile) (*Workload, error) {
	builder := cpu.NewProgramBuilder(prof.Name, pl.memCfg, pl.n)
	nextUse := analysis.NewNextUseBuilder(pl.n / 8)
	stream := workload.GenerateStream(prof, pl.n, pl.window)

	// Best-effort streaming write of the trace artifact: a failure at any
	// point aborts persistence (a later run regenerates it) but never the
	// preparation itself. The deferred Abort is panic insurance — if this
	// pass dies mid-window (the workload group's guard converts that into
	// a batch fallback), the half-written entry is discarded rather than
	// left in flight; Abort is a no-op on nil and after Commit.
	var entry *engine.StreamEntry
	var cw *trace.ContainerWriter
	defer func() { entry.Abort() }()
	if pl.traceStore != nil {
		if e, ok := pl.traceStore.BeginStream(app); ok {
			if w, err := trace.NewContainerWriter(e.F, prof.Name); err == nil {
				entry, cw = e, w
			} else {
				e.Abort()
			}
		}
	}

	for chunk := stream.Next(); chunk != nil; chunk = stream.Next() {
		faults.PanicPoint("stream-window")
		if cw != nil {
			if err := cw.WriteSection(trace.SecInstsZ, trace.EncodeInstsPacked(chunk)); err != nil {
				entry.Abort()
				entry, cw = nil, nil
			}
		}
		nextUse.Append(builder.Append(chunk))
	}
	if cw != nil {
		if err := cw.Close(); err != nil {
			entry.Abort()
		} else {
			entry.Commit()
		}
	}

	prog := builder.Finish()
	nextAt := nextUse.Finish()
	if len(nextAt) != len(prog.Blocks) {
		return nil, fmt.Errorf("experiments: streamed successor array length %d != %d block accesses", len(nextAt), len(prog.Blocks))
	}
	// Persist the derived artifacts so later runs (batch or streamed) load
	// instead of regenerating; same best-effort contract as the groups'
	// write-back. Sections stream to the entry files one at a time — the
	// batch path's Store would assemble each whole container in memory,
	// which at this point would sit on top of the finished Program and
	// dominate the peak the windowed walk just avoided.
	if pl.programStore != nil {
		streamArtifact(pl.programStore, app, prof.Name,
			func() (string, []byte) { return trace.SecAnnot, prog.AnnotationBytes() },
			func() (string, []byte) { return trace.SecDesc, prog.Desc },
			func() (string, []byte) { return trace.SecBlocks, trace.EncodeUint64sDelta(prog.Blocks) })
		streamArtifact(pl.nextatStore, app, "nextat",
			func() (string, []byte) { return trace.SecNextAt, trace.EncodeInt64sDelta(nextAt) })
		streamArtifact(pl.datalatStore, app, "datalat",
			func() (string, []byte) { return trace.SecDataLat, trace.EncodeInt16s(prog.DataLat) })
	}
	pl.streamed.Add(1)
	return &Workload{
		Profile: prof,
		Prog:    prog,
		Trace:   prog.Trace,
		Ann:     prog.Ann,
		Blocks:  prog.Blocks,
		Oracle:  analysis.NewNextUseOracle(prog.Blocks),
		NextAt:  nextAt,
	}, nil
}

// streamArtifact writes one artifact container straight to a store entry
// file, materializing each section payload only while it is being written
// (the sections are closures so encodings never coexist). Content matches
// what the store's batch encoder would have produced — single-section
// containers for the array stages, the three-section program container —
// so either path reads either path's entries. Best-effort like Store: any
// failure aborts the entry and the artifact is simply regenerated later.
func streamArtifact[V any](c *engine.DiskCache[string, V], app, name string, sections ...func() (string, []byte)) {
	e, ok := c.BeginStream(app)
	if !ok {
		return
	}
	cw, err := trace.NewContainerWriter(e.F, name)
	if err != nil {
		e.Abort()
		return
	}
	for _, section := range sections {
		tag, payload := section()
		if err := cw.WriteSection(tag, payload); err != nil {
			e.Abort()
			return
		}
	}
	if err := cw.Close(); err != nil {
		e.Abort()
		return
	}
	e.Commit()
}
