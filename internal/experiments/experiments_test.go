package experiments

import (
	"strings"
	"testing"

	"acic/internal/workload"
)

// smallSuite builds a suite over a reduced app set and short traces so the
// integration tests stay fast.
func smallSuite(t *testing.T) *Suite {
	t.Helper()
	s := NewSuite(60_000)
	s.Apps = []string{"media-streaming", "sibench"}
	return s
}

func TestAllSchemesBuildAndRun(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	w := Prepare(prof, 30_000)
	for _, name := range SchemeNames() {
		sub, err := NewScheme(name, w)
		if err != nil {
			t.Fatalf("scheme %s: %v", name, err)
		}
		res := RunSubsystem(w, sub, DefaultOptions())
		if res.Instructions == 0 || res.Cycles == 0 {
			t.Errorf("scheme %s: empty result %+v", name, res)
		}
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	w := Prepare(prof, 5_000)
	if _, err := NewScheme("definitely-not-a-scheme", w); err == nil {
		t.Error("unknown scheme must error")
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := smallSuite(t)
	r1 := s.Result("sibench", Baseline, "fdp")
	r2 := s.Result("sibench", Baseline, "fdp")
	if r1 != r2 {
		t.Error("memoized results must be identical")
	}
	if len(s.AppNames()) != 2 {
		t.Error("app restriction ignored")
	}
	if len(s.SPECNames()) != 5 {
		t.Error("SPEC list wrong")
	}
}

func TestOrderingInvariants(t *testing.T) {
	// The structural results every figure depends on: OPT beats the
	// baseline, and ACIC lands between baseline and OPT on MPKI.
	s := smallSuite(t)
	for _, app := range s.AppNames() {
		base := s.Result(app, Baseline, "fdp")
		acic := s.Result(app, "acic", "fdp")
		opt := s.Result(app, "opt", "fdp")
		if opt.MPKI() >= base.MPKI() {
			t.Errorf("%s: OPT MPKI %.2f not below baseline %.2f", app, opt.MPKI(), base.MPKI())
		}
		if acic.MPKI() >= base.MPKI() {
			t.Errorf("%s: ACIC MPKI %.2f not below baseline %.2f", app, acic.MPKI(), base.MPKI())
		}
		if opt.Cycles >= base.Cycles {
			t.Errorf("%s: OPT cycles %d not below baseline %d", app, opt.Cycles, base.Cycles)
		}
	}
}

func TestSpeedupAndReductionHelpers(t *testing.T) {
	s := smallSuite(t)
	sp := s.SpeedupOver("sibench", Baseline, "opt", "fdp")
	if sp <= 1.0 {
		t.Errorf("OPT speedup = %.4f, want > 1", sp)
	}
	red := s.MPKIReductionOver("sibench", Baseline, "opt", "fdp")
	if red <= 0 || red > 1 {
		t.Errorf("OPT MPKI reduction = %.4f", red)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	out := Table1().String()
	if !strings.Contains(out, "2.668KB") && !strings.Contains(out, "2.67") {
		t.Errorf("Table 1 total missing 2.67KB:\n%s", out)
	}
	for _, comp := range []string{"i-Filter", "HRT", "PT", "CSHR"} {
		if !strings.Contains(out, comp) {
			t.Errorf("Table 1 missing %s", comp)
		}
	}
}

func TestTable4ListsAllSchemes(t *testing.T) {
	out := Table4().String()
	for _, sch := range []string{"srrip", "ship", "ghrp", "dsb", "obm", "vvc", "vc3k", "acic", "opt"} {
		if !strings.Contains(out, sch) {
			t.Errorf("Table 4 missing %s", sch)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	s := smallSuite(t)
	out := s.Fig1a().String()
	if !strings.Contains(out, "media-streaming") {
		t.Errorf("Fig 1a missing app row:\n%s", out)
	}
	// The spatial bucket should dominate (>70%), visible as a 7x or 8x
	// leading percentage in the first data column.
	if !strings.Contains(out, "media-streaming  8") && !strings.Contains(out, "media-streaming  7") && !strings.Contains(out, "media-streaming  9") {
		t.Errorf("Fig 1a spatial bucket not dominant:\n%s", out)
	}
}

func TestFig3bWrongInsertionBand(t *testing.T) {
	s := smallSuite(t)
	_, wrong := s.Fig3b("media-streaming")
	// The paper reports 38.38%; our band check: a substantial minority of
	// insertions must be wrong, else admission control has nothing to do.
	if wrong < 0.10 || wrong > 0.80 {
		t.Errorf("wrong-insertion fraction = %.3f, outside plausible band", wrong)
	}
}

func TestFig13AdmitFractionsInRange(t *testing.T) {
	s := smallSuite(t)
	out := s.Fig13().String()
	if !strings.Contains(out, "%") {
		t.Errorf("Fig 13 output:\n%s", out)
	}
}

func TestEnergyTableNegativeAvg(t *testing.T) {
	s := smallSuite(t)
	out := s.Energy().String()
	if !strings.Contains(out, "avg") {
		t.Errorf("energy table missing avg row:\n%s", out)
	}
	// The avg row should report a saving (negative delta), echoing the
	// paper's -0.63%.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "-") {
		t.Errorf("expected an energy saving in %q", last)
	}
}

func TestACICBypassAdapter(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	w := Prepare(prof, 20_000)
	sub, err := NewScheme("acic-nofilter", w)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSubsystem(w, sub, DefaultOptions())
	if res.Instructions == 0 {
		t.Error("no instructions retired")
	}
	if sub.Name() != "acic-nofilter" {
		t.Errorf("name = %q", sub.Name())
	}
}

func TestExtensionDrivers(t *testing.T) {
	s := smallSuite(t)
	if out := s.ExtendedComparison().String(); !strings.Contains(out, "acic-pfaware") {
		t.Errorf("extended comparison missing pf-aware row:\n%s", out)
	}
	if out := s.Headroom().String(); !strings.Contains(out, "36KB") {
		t.Errorf("headroom table missing 36KB column:\n%s", out)
	}
	out := s.PrefetcherBaselines().String()
	for _, pf := range []string{"none", "next-line", "stream", "entangling", "fdp"} {
		if !strings.Contains(out, pf) {
			t.Errorf("prefetcher table missing %s:\n%s", pf, out)
		}
	}
}

func TestAblationCSHRDefaultRows(t *testing.T) {
	s := smallSuite(t)
	out := AblationCSHRDefault(s).String()
	for _, m := range []string{"none", "admit", "drop"} {
		if !strings.Contains(out, m) {
			t.Errorf("ablation missing mode %s:\n%s", m, out)
		}
	}
}

func TestPrefetchAwareSchemeRuns(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	w := Prepare(prof, 30_000)
	sub, err := NewScheme("acic-pfaware", w)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSubsystem(w, sub, DefaultOptions())
	if res.Instructions == 0 || sub.Name() != "acic-pfaware" {
		t.Errorf("pf-aware run broken: %+v name=%q", res, sub.Name())
	}
}
