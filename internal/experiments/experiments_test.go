package experiments

import (
	"strings"
	"testing"

	"acic/internal/workload"
)

// smallSuite builds a suite over a reduced app set and short traces so the
// integration tests stay fast.
func smallSuite(t *testing.T) *Suite {
	t.Helper()
	s := NewSuite(60_000)
	s.Apps = []string{"media-streaming", "sibench"}
	return s
}

func TestAllSchemesBuildAndRun(t *testing.T) {
	prof, _ := workload.ByName("media-streaming")
	w := Prepare(prof, 30_000)
	for _, name := range SchemeNames() {
		sub, err := NewScheme(name, w)
		if err != nil {
			t.Fatalf("scheme %s: %v", name, err)
		}
		res, err := RunSubsystem(w, sub, DefaultOptions())
		if err != nil {
			t.Fatalf("scheme %s: %v", name, err)
		}
		if res.Instructions == 0 || res.Cycles == 0 {
			t.Errorf("scheme %s: empty result %+v", name, res)
		}
	}
}

func TestUnknownSchemeRejected(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	w := Prepare(prof, 5_000)
	if _, err := NewScheme("definitely-not-a-scheme", w); err == nil {
		t.Error("unknown scheme must error")
	}
}

func TestUnknownPrefetcherRejected(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	w := Prepare(prof, 5_000)
	opts := DefaultOptions()
	opts.Prefetcher = "telepathy"
	if _, err := Run(w, Baseline, opts); err == nil {
		t.Error("unknown prefetcher must error, not panic")
	}
}

func TestSuiteErrorsSurface(t *testing.T) {
	s := smallSuite(t)
	if _, err := s.Result("sibench", "definitely-not-a-scheme", "fdp"); err == nil {
		t.Error("Result must surface scheme errors")
	}
	if _, err := s.Workload("definitely-not-an-app"); err == nil {
		t.Error("Workload must surface unknown-app errors")
	}
	if err := s.Require(Cell{"sibench", Baseline, "fdp"}, Cell{"no-such-app", Baseline, "fdp"}); err == nil {
		t.Error("Require must surface unknown-app errors")
	}
	bad := NewSuite(20_000)
	bad.Apps = []string{"no-such-app"}
	if _, err := bad.Fig10(); err == nil {
		t.Error("figure over an unknown app must return an error")
	}
}

func TestSuiteMemoization(t *testing.T) {
	s := smallSuite(t)
	r1, err := s.Result("sibench", Baseline, "fdp")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Result("sibench", Baseline, "fdp")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memoized results must be identical")
	}
	if computed, _, _ := s.Stats(); computed != 1 {
		t.Errorf("cell computed %d times, want 1", computed)
	}
	if len(s.AppNames()) != 2 {
		t.Error("app restriction ignored")
	}
	if len(s.SPECNames()) != 5 {
		t.Error("SPEC list wrong")
	}
}

func TestOrderingInvariants(t *testing.T) {
	// The structural results every figure depends on: OPT beats the
	// baseline, and ACIC lands between baseline and OPT on MPKI.
	s := smallSuite(t)
	if err := s.Require(CrossCells(s.AppNames(), []string{Baseline, "acic", "opt"}, "fdp")...); err != nil {
		t.Fatal(err)
	}
	for _, app := range s.AppNames() {
		base := s.res(app, Baseline, "fdp")
		acic := s.res(app, "acic", "fdp")
		opt := s.res(app, "opt", "fdp")
		if opt.MPKI() >= base.MPKI() {
			t.Errorf("%s: OPT MPKI %.2f not below baseline %.2f", app, opt.MPKI(), base.MPKI())
		}
		if acic.MPKI() >= base.MPKI() {
			t.Errorf("%s: ACIC MPKI %.2f not below baseline %.2f", app, acic.MPKI(), base.MPKI())
		}
		if opt.Cycles >= base.Cycles {
			t.Errorf("%s: OPT cycles %d not below baseline %d", app, opt.Cycles, base.Cycles)
		}
	}
}

func TestSpeedupAndReductionHelpers(t *testing.T) {
	s := smallSuite(t)
	sp, err := s.SpeedupOver("sibench", Baseline, "opt", "fdp")
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1.0 {
		t.Errorf("OPT speedup = %.4f, want > 1", sp)
	}
	red, err := s.MPKIReductionOver("sibench", Baseline, "opt", "fdp")
	if err != nil {
		t.Fatal(err)
	}
	if red <= 0 || red > 1 {
		t.Errorf("OPT MPKI reduction = %.4f", red)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	out := Table1().String()
	if !strings.Contains(out, "2.668KB") && !strings.Contains(out, "2.67") {
		t.Errorf("Table 1 total missing 2.67KB:\n%s", out)
	}
	for _, comp := range []string{"i-Filter", "HRT", "PT", "CSHR"} {
		if !strings.Contains(out, comp) {
			t.Errorf("Table 1 missing %s", comp)
		}
	}
}

func TestTable4ListsAllSchemes(t *testing.T) {
	out := Table4().String()
	for _, sch := range []string{"srrip", "ship", "ghrp", "dsb", "obm", "vvc", "vc3k", "acic", "opt"} {
		if !strings.Contains(out, sch) {
			t.Errorf("Table 4 missing %s", sch)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	s := smallSuite(t)
	tbl, err := s.Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "media-streaming") {
		t.Errorf("Fig 1a missing app row:\n%s", out)
	}
	// The spatial bucket should dominate (>70%), visible as a 7x or 8x
	// leading percentage in the first data column.
	if !strings.Contains(out, "media-streaming  8") && !strings.Contains(out, "media-streaming  7") && !strings.Contains(out, "media-streaming  9") {
		t.Errorf("Fig 1a spatial bucket not dominant:\n%s", out)
	}
}

func TestFig3bWrongInsertionBand(t *testing.T) {
	s := smallSuite(t)
	_, wrong, err := s.Fig3b("media-streaming")
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 38.38%; our band check: a substantial minority of
	// insertions must be wrong, else admission control has nothing to do.
	if wrong < 0.10 || wrong > 0.80 {
		t.Errorf("wrong-insertion fraction = %.3f, outside plausible band", wrong)
	}
}

func TestFig13AdmitFractionsInRange(t *testing.T) {
	s := smallSuite(t)
	tbl, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if out := tbl.String(); !strings.Contains(out, "%") {
		t.Errorf("Fig 13 output:\n%s", out)
	}
}

func TestEnergyTableNegativeAvg(t *testing.T) {
	s := smallSuite(t)
	tbl, err := s.Energy()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "avg") {
		t.Errorf("energy table missing avg row:\n%s", out)
	}
	// The avg row should report a saving (negative delta), echoing the
	// paper's -0.63%.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "-") {
		t.Errorf("expected an energy saving in %q", last)
	}
}

func TestACICBypassAdapter(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	w := Prepare(prof, 20_000)
	sub, err := NewScheme("acic-nofilter", w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSubsystem(w, sub, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 {
		t.Error("no instructions retired")
	}
	if sub.Name() != "acic-nofilter" {
		t.Errorf("name = %q", sub.Name())
	}
}

func TestExtensionDrivers(t *testing.T) {
	s := smallSuite(t)
	ext, err := s.ExtendedComparison()
	if err != nil {
		t.Fatal(err)
	}
	if out := ext.String(); !strings.Contains(out, "acic-pfaware") {
		t.Errorf("extended comparison missing pf-aware row:\n%s", out)
	}
	hr, err := s.Headroom()
	if err != nil {
		t.Fatal(err)
	}
	if out := hr.String(); !strings.Contains(out, "36KB") {
		t.Errorf("headroom table missing 36KB column:\n%s", out)
	}
	pfb, err := s.PrefetcherBaselines()
	if err != nil {
		t.Fatal(err)
	}
	out := pfb.String()
	for _, pf := range []string{"none", "next-line", "stream", "entangling", "fdp"} {
		if !strings.Contains(out, pf) {
			t.Errorf("prefetcher table missing %s:\n%s", pf, out)
		}
	}
}

func TestAblationCSHRDefaultRows(t *testing.T) {
	s := smallSuite(t)
	tbl, err := AblationCSHRDefault(s)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, m := range []string{"none", "admit", "drop"} {
		if !strings.Contains(out, m) {
			t.Errorf("ablation missing mode %s:\n%s", m, out)
		}
	}
}

func TestPrefetchAwareSchemeRuns(t *testing.T) {
	prof, _ := workload.ByName("sibench")
	w := Prepare(prof, 30_000)
	sub, err := NewScheme("acic-pfaware", w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSubsystem(w, sub, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || sub.Name() != "acic-pfaware" {
		t.Errorf("pf-aware run broken: %+v name=%q", res, sub.Name())
	}
}
