package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acic/internal/experiments/engine"
	"acic/internal/faults"
	"acic/internal/trace"
	"acic/internal/workload"
)

// findArtifactWithSection returns the path of the store artifact carrying
// a section with the given tag, plus that section's spans within it.
func findArtifactWithSection(t *testing.T, dir, tag string) (string, []trace.SectionSpan) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.actr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		spans, err := trace.SectionSpans(data)
		if err != nil {
			t.Fatal(err)
		}
		var hits []trace.SectionSpan
		for _, sp := range spans {
			if sp.Tag == tag {
				hits = append(hits, sp)
			}
		}
		if len(hits) > 0 {
			return f, hits
		}
	}
	t.Fatalf("no store artifact carries a %s section", tag)
	return "", nil
}

// flipPayloadBit flips one bit in the middle of a section payload on
// disk. Working at the raw-byte level (rather than re-encoding) is the
// point: the container CRC still covers the payload, so the flip must
// surface as ErrBadFormat on the next read.
func flipPayloadBit(t *testing.T, path string, sp trace.SectionSpan) {
	t.Helper()
	if sp.Len == 0 {
		t.Fatalf("section %s payload is empty; cannot flip", sp.Tag)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[sp.Off+sp.Len/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// assertQuarantined checks the store's quarantine/ holds exactly want
// entries, each with a reason file, and that no reason or temp file leaks
// into the store root.
func assertQuarantined(t *testing.T, dir string, want int) {
	t.Helper()
	qdir := filepath.Join(dir, engine.QuarantineDirName)
	entries, err := os.ReadDir(qdir)
	if err != nil {
		if want == 0 && os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	var quarantined, reasons int
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".reason") {
			reasons++
		} else {
			quarantined++
		}
	}
	if quarantined != want || reasons != want {
		t.Fatalf("quarantine holds %d entries / %d reasons, want %d each", quarantined, reasons, want)
	}
	root, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range root {
		if ent.IsDir() {
			continue
		}
		if strings.HasSuffix(ent.Name(), ".reason") || strings.HasPrefix(ent.Name(), "tmp-") {
			t.Fatalf("store root leaked %s", ent.Name())
		}
	}
}

// TestSectionBitFlipQuarantineAndRegenerate is the satellite coverage
// matrix: one flipped bit inside each v2 section type's CRC-covered
// payload must quarantine the artifact (reason file and all), regenerate
// a workload equal to the reference, and leave the store warm again.
func TestSectionBitFlipQuarantineAndRegenerate(t *testing.T) {
	const app, n = "media-streaming", 20_000
	prof, _ := workload.ByName(app)
	want := Prepare(prof, n)

	for _, tag := range []string{
		trace.SecInstsZ, trace.SecAnnot, trace.SecDesc,
		trace.SecBlocks, trace.SecNextAt, trace.SecDataLat,
	} {
		t.Run(tag, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := newTestPipeline(t, n, dir).Workload(app); err != nil {
				t.Fatal(err)
			}
			path, spans := findArtifactWithSection(t, dir, tag)
			flipPayloadBit(t, path, spans[0])

			pl := newTestPipeline(t, n, dir)
			got, err := pl.Workload(app)
			if err != nil {
				t.Fatal(err)
			}
			assertWorkloadsEqual(t, want, got)
			if q := pl.Quarantined(); q != 1 {
				t.Fatalf("Quarantined = %d, want 1", q)
			}
			assertQuarantined(t, dir, 1)

			// The regenerated artifact went back to the store: next run
			// is fully warm again.
			rewarmed := newTestPipeline(t, n, dir)
			if _, err := rewarmed.Workload(app); err != nil {
				t.Fatal(err)
			}
			assertStageCounts(t, rewarmed, 0, 1)
		})
	}

	// The legacy SecInsts layout: rewrite the trace artifact as an
	// old-generation INST container, confirm it still loads (compat),
	// then flip a payload bit and confirm quarantine + regeneration.
	t.Run(trace.SecInsts, func(t *testing.T) {
		dir := t.TempDir()
		if _, err := newTestPipeline(t, n, dir).Workload(app); err != nil {
			t.Fatal(err)
		}
		path, _ := findArtifactWithSection(t, dir, trace.SecInstsZ)
		var b bytes.Buffer
		if err := trace.WriteContainer(&b, want.Trace.Name, []trace.Section{
			{Tag: trace.SecInsts, Data: trace.EncodeInsts(want.Trace.Insts)},
		}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		compat := newTestPipeline(t, n, dir)
		got, err := compat.Workload(app)
		if err != nil {
			t.Fatal(err)
		}
		assertWorkloadsEqual(t, want, got)
		if q := compat.Quarantined(); q != 0 {
			t.Fatalf("compat INST artifact quarantined (%d), want readable", q)
		}

		_, spans := findArtifactWithSection(t, dir, trace.SecInsts)
		flipPayloadBit(t, path, spans[0])
		pl := newTestPipeline(t, n, dir)
		got, err = pl.Workload(app)
		if err != nil {
			t.Fatal(err)
		}
		assertWorkloadsEqual(t, want, got)
		if q := pl.Quarantined(); q != 1 {
			t.Fatalf("Quarantined = %d, want 1", q)
		}
		assertQuarantined(t, dir, 1)
	})
}

// TestStreamedStoreBitFlipWarmLoad covers the streamed-store warm-load
// path: artifacts written by the windowed cold prepare (multiple INSZ
// sections in one container) are corrupted and must quarantine and
// regenerate exactly like batch-written ones.
func TestStreamedStoreBitFlipWarmLoad(t *testing.T) {
	const app, n = "media-streaming", 20_000
	prof, _ := workload.ByName(app)
	want := Prepare(prof, n)

	dir := t.TempDir()
	cold, err := NewPipeline(PipelineConfig{N: n, Dir: dir, Window: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Workload(app); err != nil {
		t.Fatal(err)
	}
	if cold.Streamed() != 1 {
		t.Fatalf("cold prepare did not stream (%d)", cold.Streamed())
	}
	path, spans := findArtifactWithSection(t, dir, trace.SecInstsZ)
	if len(spans) < 2 {
		t.Fatalf("streamed trace artifact has %d INSZ sections, want one per window", len(spans))
	}
	flipPayloadBit(t, path, spans[len(spans)-1])

	// A warm store routes the windowed pipeline through the batch load
	// path (storeWarm); the corrupt trace must quarantine there and the
	// workload still come out equal.
	warm, err := NewPipeline(PipelineConfig{N: n, Dir: dir, Window: 4096})
	if err != nil {
		t.Fatal(err)
	}
	got, err := warm.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	assertWorkloadsEqual(t, want, got)
	if q := warm.Quarantined(); q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}
	assertQuarantined(t, dir, 1)
}

// TestStreamFallbackToBatch: an injected panic mid-window must degrade
// the streamed prepare to the batch path — same workload, counted as a
// fallback, no error surfaced.
func TestStreamFallbackToBatch(t *testing.T) {
	const app, n = "sibench", 20_000
	prof, _ := workload.ByName(app)
	want := Prepare(prof, n)

	// Draw sequence on the panic-cell counter (single-threaded Workload
	// call): #0 the workloads group's compute boundary, #1.. one per
	// stream window. every=3 fires on draw #2 — the second window — so
	// the stream dies mid-flight and the batch stages (whose compute
	// boundaries also draw) recover via their transient-retry policy.
	if err := faults.Install("panic-cell:every=3"); err != nil {
		t.Fatal(err)
	}
	defer faults.Install("")
	pl, err := NewPipeline(PipelineConfig{N: n, Dir: t.TempDir(), Window: 4096})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	faults.Install("")
	assertWorkloadsEqual(t, want, got)
	if f := pl.StreamFallbacks(); f != 1 {
		t.Fatalf("StreamFallbacks = %d, want 1", f)
	}
	if pl.Streamed() != 0 {
		t.Fatalf("Streamed = %d after fallback, want 0", pl.Streamed())
	}
}

// TestGangDegradeLadder: injected gang panics must degrade to serial
// reruns with results identical to a fault-free serial suite, and a cell
// whose failure is deterministic (unknown scheme) must fail only itself.
func TestGangDegradeLadder(t *testing.T) {
	const n = 20_000
	apps := []string{"media-streaming", "sibench"}
	cells := CrossCells(apps, []string{"lru", "acic", "opt"}, "none")

	clean := NewSuite(n)
	clean.Apps = apps
	if err := clean.Require(cells...); err != nil {
		t.Fatal(err)
	}

	// every=1 fires on every panic-cell draw: each gang attempt panics at
	// its boundary and every member walks the serial-rerun ladder. The
	// serial reruns run through the results group's retry path whose
	// compute boundary also draws — so give it enough attempts.
	t.Setenv("ACIC_RETRY_ATTEMPTS", "4")
	if err := faults.Install("panic-cell:every=2"); err != nil {
		t.Fatal(err)
	}
	defer faults.Install("")
	gang := NewSuite(n)
	gang.Apps = apps
	gang.GangSize = 3
	if err := gang.Require(cells...); err != nil {
		t.Fatal(err)
	}
	faults.Install("")

	fs := gang.FaultStats()
	if fs.GangDegraded == 0 && fs.Retries == 0 {
		t.Fatalf("fault run absorbed nothing: %+v", fs)
	}
	for _, c := range cells {
		want, err := clean.Result(c.App, c.Scheme, c.Prefetcher)
		if err != nil {
			t.Fatal(err)
		}
		got, err := gang.Result(c.App, c.Scheme, c.Prefetcher)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if want != got {
			t.Fatalf("%v diverged under injected gang faults", c)
		}
	}
}

// TestGangBadMemberFailsOnlyItself: a deterministic per-member failure
// re-runs serially, fails again, and is fulfilled with its own error —
// the healthy members of the same gang still produce results.
func TestGangBadMemberFailsOnlyItself(t *testing.T) {
	const n = 20_000
	s := NewSuite(n)
	s.Apps = []string{"media-streaming"}
	s.GangSize = 3
	cells := []Cell{
		{"media-streaming", "lru", "none"},
		{"media-streaming", "no-such-scheme", "none"},
		{"media-streaming", "acic", "none"},
	}
	err := s.Require(cells...)
	if err == nil || !strings.Contains(err.Error(), "no-such-scheme") {
		t.Fatalf("Require = %v, want the bad member's error", err)
	}
	for _, c := range []Cell{cells[0], cells[2]} {
		if _, err := s.Result(c.App, c.Scheme, c.Prefetcher); err != nil {
			t.Fatalf("healthy gang member %v poisoned: %v", c, err)
		}
	}
	if fs := s.FaultStats(); fs.SerialReruns == 0 {
		t.Fatalf("bad member never walked the ladder: %+v", fs)
	}
}

// TestSuiteContextCancel: a cancelled suite context fails not-yet-started
// cells with the context error, on both the per-cell and gang paths.
func TestSuiteContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, gangSize := range []int{0, 2} {
		s := NewSuite(20_000)
		s.Apps = []string{"media-streaming"}
		s.GangSize = gangSize
		s.Context = ctx
		err := s.Require(CrossCells(s.Apps, []string{"lru", "acic"}, "none")...)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("GangSize=%d: Require = %v, want context.Canceled", gangSize, err)
		}
	}
}

// TestFaultInjectedExpAllByteIdentical is the acceptance criterion: with
// a pinned fault spec injecting IO errors, artifact corruption, and
// periodic worker panics, the full experiment set completes with bounded
// retries and its output is byte-identical to a fault-free run — cold
// (faults corrupt some stored artifacts) and warm (the corrupt entries
// quarantine and regenerate).
func TestFaultInjectedExpAllByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment set in -short mode")
	}
	const n = 12_000
	apps := []string{"media-streaming", "sibench"}

	cleanSuite := NewSuite(n)
	cleanSuite.Apps = apps
	clean := renderAll(t, cleanSuite)

	const spec = "io-err:p=0.05;corrupt-artifact:p=0.5;panic-cell:every=23;seed=7"
	t.Setenv("ACIC_RETRY_ATTEMPTS", "4")
	if err := faults.Install(spec); err != nil {
		t.Fatal(err)
	}
	defer faults.Install("")

	dir := t.TempDir()
	coldSuite := NewSuite(n)
	coldSuite.Apps = apps
	coldSuite.ArtifactDir = dir
	coldSuite.GangSize = 3
	cold := renderAll(t, coldSuite)
	if cold != clean {
		t.Fatalf("fault-injected cold output diverges from fault-free run")
	}
	coldStats := coldSuite.FaultStats()
	if !coldStats.Any() || coldStats.Spec != spec {
		t.Fatalf("cold fault run recorded no activity: %+v", coldStats)
	}

	// Warm rerun over the (partially corrupted) store: quarantines must
	// absorb the damage and output stay identical again.
	warmSuite := NewSuite(n)
	warmSuite.Apps = apps
	warmSuite.ArtifactDir = dir
	warm := renderAll(t, warmSuite)
	faults.Install("")
	if warm != clean {
		t.Fatalf("fault-injected warm output diverges from fault-free run")
	}
	assertNoStrayStoreFiles(t, dir)
}

// assertNoStrayStoreFiles checks the store root holds only artifact and
// result entries — no temps, no reason files (quarantine/ and tmp/ are
// where those belong).
func assertNoStrayStoreFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			if ent.Name() != engine.QuarantineDirName && ent.Name() != "tmp" {
				t.Fatalf("unexpected store subdirectory %s", ent.Name())
			}
			continue
		}
		if !strings.HasSuffix(ent.Name(), ".actr") && !strings.HasSuffix(ent.Name(), ".json") {
			t.Fatalf("stray file %s in store root", ent.Name())
		}
	}
}
