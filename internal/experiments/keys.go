package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"acic/internal/core"
	"acic/internal/cpu"
	"acic/internal/mem"
	"acic/internal/prefetch"
	"acic/internal/workload"
)

// Key derivation for both persistent stores — the result cache (Suite's
// simulation cells) and the workload artifact store (Pipeline's prepare
// stages) — lives here, on one shared prefix of schema version, simulator
// config digest, workload profile digest, and trace length. A config
// change or schema bump therefore invalidates cells and artifacts
// together: stale prepared inputs can never be paired with fresh results
// or vice versa, and there is exactly one bump site (DESIGN.md §9).

// cacheSchemaVersion invalidates every persistent entry — simulation
// results and prepared-workload artifacts alike — when behavior changes in
// a way the hashed default configs don't capture: algorithm changes
// anywhere in the pipeline (workload generation, branch annotation,
// descriptor derivation, the simulators), the artifact encodings, or the
// per-scheme constants hard-coded in NewScheme (filter slots, bypass
// thresholds, victim-cache sizes). Bump it alongside such changes; this is
// the single bump site for both stores.
//
// v2: the data-side memory hierarchy was decoupled from the
// instruction-miss stream into a per-workload precomputed latency
// timeline (DESIGN.md §8), shifting absolute cycle counts.
//
// v3: result-cache keys grew a sampling component (sampleKey) so
// set-sampled quick-look results and full-grid reference results can
// never collide in one store; bumped together with the key-format change
// so a v2 store is retired wholesale rather than partially re-keyed
// (DESIGN.md §10).
const cacheSchemaVersion = 3

// simConfigHash digests the default simulator configuration (core, memory
// hierarchy, prefetchers, ACIC) and the shape of cpu.Result (%#v of the
// zero value spells out its field names), so editing a config parameter
// or reshaping the result struct invalidates the persistent stores
// mechanically. It does NOT cover scheme-local constants or algorithm
// changes — those need a cacheSchemaVersion bump. All hashed structs are
// value-only, so %#v is stable.
var simConfigHash = sync.OnceValue(func() string {
	sum := sha256.Sum256(fmt.Appendf(nil, "%#v|%#v|%#v|%#v|%#v|%#v",
		cpu.DefaultConfig(), mem.DefaultConfig(), core.DefaultConfig(),
		prefetch.DefaultEntanglingConfig(), prefetch.DefaultStreamConfig(),
		cpu.Result{}))
	return hex.EncodeToString(sum[:16])
})

// profileDigest canonicalizes the workload identity behind an app name:
// the SHA-256 of the profile's %#v when registered (so editing a profile
// parameter invalidates its entries), or a sentinel for unknown names.
func profileDigest(p workload.Profile, ok bool, app string) string {
	if !ok {
		return "unknown:" + app
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", p)))
	return hex.EncodeToString(sum[:])
}

// storeKeyPrefix is the shared prefix of every persistent key:
// "v<schema>|cfg:<config digest>|profile:<profile digest>|n:<trace len>".
// Result-cache keys append |scheme|pf|warmup|sample; artifact keys append
// |stage (workload preparation is sampling-independent, so artifact keys
// carry no sample component and one warmed store serves both lanes).
func storeKeyPrefix(profile string, n int) string {
	return fmt.Sprintf("v%d|cfg:%s|profile:%s|n:%d", cacheSchemaVersion, simConfigHash(), profile, n)
}

// sampleKey canonicalizes a run's set-sampling configuration for
// result-cache keys: "full" for the reference lane, "1/<stride>@<offset>"
// for a sampled lane. Sampled and full results therefore live under
// distinct keys in the same CacheDir and can never shadow each other.
func sampleKey(s cpu.SampleConfig) string {
	if !s.Enabled() {
		return "full"
	}
	return fmt.Sprintf("1/%d@%d", s.Stride, s.Offset)
}
