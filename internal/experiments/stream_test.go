package experiments

import (
	"testing"

	"acic/internal/workload"
)

// newStreamedPipeline builds a windowed pipeline over dir.
func newStreamedPipeline(t *testing.T, n, window int, dir string) *Pipeline {
	t.Helper()
	pl, err := NewPipeline(PipelineConfig{N: n, Dir: dir, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// assertPreparedEqual is assertWorkloadsEqual minus the Trace.Insts check:
// streamed workloads deliberately carry no instruction records, so the
// comparison covers every array the simulator actually reads.
func assertPreparedEqual(t *testing.T, want, got *Workload) {
	t.Helper()
	if want.Profile != got.Profile {
		t.Fatalf("profile mismatch: %v vs %v", got.Profile.Name, want.Profile.Name)
	}
	if !equalSlices(t, "Ann", want.Ann, got.Ann) ||
		!equalSlices(t, "Desc", want.Prog.Desc, got.Prog.Desc) ||
		!equalSlices(t, "Blocks", want.Prog.Blocks, got.Prog.Blocks) ||
		!equalSlices(t, "MemBlk", want.Prog.MemBlk, got.Prog.MemBlk) ||
		!equalSlices(t, "DataLat", want.Prog.DataLat, got.Prog.DataLat) ||
		!equalSlices(t, "NextAt", want.NextAt, got.NextAt) {
		t.FailNow()
	}
}

func equalSlices[T comparable](t *testing.T, label string, a, b []T) bool {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: length %d vs %d", label, len(a), len(b))
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s: differs at %d", label, i)
			return false
		}
	}
	return true
}

// TestPipelineStreamedMatchesBatch pins the fused streamed prepare against
// the batch pipeline at window sizes including 1 and beyond the trace
// length: every prepared array equal, the streamed workload carrying no
// Inst records, and the streamed counter reporting the mode.
func TestPipelineStreamedMatchesBatch(t *testing.T) {
	const app, n = "media-streaming", 20_000
	prof, _ := workload.ByName(app)
	want := Prepare(prof, n)

	for _, window := range []int{1, 1000, n + 5000} {
		if window == 1 && testing.Short() {
			continue // window 1 re-enters the generator per instruction
		}
		pl := newStreamedPipeline(t, n, window, t.TempDir())
		got, err := pl.Workload(app)
		if err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		if len(got.Trace.Insts) != 0 {
			t.Errorf("window=%d: streamed workload retains %d insts", window, len(got.Trace.Insts))
		}
		assertPreparedEqual(t, want, got)
		if pl.Streamed() != 1 {
			t.Errorf("window=%d: Streamed() = %d, want 1", window, pl.Streamed())
		}
		for _, st := range pl.Stats() {
			switch st.Stage {
			case "streamed":
				if st.Computed != 1 {
					t.Errorf("window=%d: streamed stage computed %d, want 1", window, st.Computed)
				}
			default:
				if st.Computed != 0 || st.FromStore != 0 {
					t.Errorf("window=%d: stage %s ran (%d/%d) in streamed mode", window, st.Stage, st.Computed, st.FromStore)
				}
			}
		}
	}
}

// TestPipelineStreamedWritesWarmStore is the artifact-compatibility check:
// a streamed cold run fills the store (chunked INSZ trace container
// included), and a plain batch pipeline over the same store then loads
// every stage with zero regenerations and reconstructs the full workload —
// instruction records and all — equal to a from-scratch batch prepare.
func TestPipelineStreamedWritesWarmStore(t *testing.T) {
	const app, n = "sibench", 20_000
	prof, _ := workload.ByName(app)
	want := Prepare(prof, n)
	dir := t.TempDir()

	cold := newStreamedPipeline(t, n, 4096, dir)
	if _, err := cold.Workload(app); err != nil {
		t.Fatal(err)
	}

	warm := newTestPipeline(t, n, dir)
	got, err := warm.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	if reg := warm.Regenerated(); reg != 0 {
		t.Errorf("batch pipeline regenerated %d artifacts over the streamed store, want 0", reg)
	}
	assertWorkloadsEqual(t, want, got)

	// A second *streamed* pipeline over the now-warm store must route to
	// the batch load path: zero streamed prepares, all stages from store.
	rewarm := newStreamedPipeline(t, n, 4096, dir)
	got2, err := rewarm.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	if rewarm.Streamed() != 0 {
		t.Errorf("warm store still streamed %d prepares", rewarm.Streamed())
	}
	assertWorkloadsEqual(t, want, got2)
}

// TestPipelineStreamedNoStore covers the store-less streamed pipeline
// (ArtifactDir unset): preparation still streams and still matches batch.
func TestPipelineStreamedNoStore(t *testing.T) {
	const app, n = "tpcc", 15_000
	prof, _ := workload.ByName(app)
	want := Prepare(prof, n)

	pl, err := NewPipeline(PipelineConfig{N: n, Window: 2048})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Workload(app)
	if err != nil {
		t.Fatal(err)
	}
	assertPreparedEqual(t, want, got)
	if pl.Streamed() != 1 {
		t.Errorf("Streamed() = %d, want 1", pl.Streamed())
	}
}

// TestExpAllStreamedVsBatchByteIdentical is the tentpole acceptance check:
// the full -exp all experiment output of a cold streamed-prepare suite is
// byte-identical to a cold batch-prepare suite.
func TestExpAllStreamedVsBatchByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment set in -short mode")
	}
	const n = 12_000
	apps := []string{"media-streaming", "sibench"}

	batchSuite := NewSuite(n)
	batchSuite.Apps = apps
	batchSuite.ArtifactDir = t.TempDir()
	batch := renderAll(t, batchSuite)

	for _, window := range []int{512, 65_536} {
		streamSuite := NewSuite(n)
		streamSuite.Apps = apps
		streamSuite.ArtifactDir = t.TempDir()
		streamSuite.PrepareWindow = window
		streamed := renderAll(t, streamSuite)
		if streamed != batch {
			t.Errorf("window=%d: streamed-prepare output diverges from batch:\n--- batch ---\n%s--- streamed ---\n%s",
				window, batch, streamed)
		}
		// Every cold prepare must have gone through the streamed path: the
		// streamed counter covers all workloads the render touched (the
		// suite's apps plus SPEC and histogram workloads) and the four
		// whole-trace stages never ran.
		for _, st := range streamSuite.PrepareStats() {
			if st.Stage == "streamed" {
				if st.Computed < int64(len(apps)) {
					t.Errorf("window=%d: streamed only %d prepares: %+v", window, st.Computed, streamSuite.PrepareStats())
				}
			} else if st.Computed != 0 {
				t.Errorf("window=%d: stage %s regenerated %d artifacts in streamed mode", window, st.Stage, st.Computed)
			}
		}
	}
}
