package energy

import "testing"

func TestTotalGrowsWithActivity(t *testing.T) {
	p := DefaultParams()
	a := NewAccount(p)
	a.SetRun(1000, 1000)
	a.AddStructure("x", 1024, 100)
	b := NewAccount(p)
	b.SetRun(2000, 2000)
	b.AddStructure("x", 1024, 200)
	if b.Total() <= a.Total() {
		t.Error("longer run must cost more energy")
	}
}

func TestStructureEnergyScales(t *testing.T) {
	p := DefaultParams()
	a := NewAccount(p)
	a.SetRun(1000, 1000)
	a.AddStructure("small", 1024, 1000)
	a.AddStructure("large", 64*1024, 1000)
	if a.StructureEnergy(1) <= a.StructureEnergy(0) {
		t.Error("larger structure must cost more per access")
	}
}

func TestDeltaSign(t *testing.T) {
	p := DefaultParams()
	base := NewAccount(p)
	base.SetRun(10000, 10000)
	fast := NewAccount(p)
	fast.SetRun(9500, 10000) // same work, fewer cycles
	if Delta(base, fast) >= 0 {
		t.Error("a faster run should save energy")
	}
	slowAndFat := NewAccount(p)
	slowAndFat.SetRun(10000, 10000)
	slowAndFat.AddStructure("extra", 1<<15, 10000)
	if Delta(base, slowAndFat) <= 0 {
		t.Error("same speed with extra structures must cost energy")
	}
}

// TestACICEnergyBand mirrors Section III-D: ~2% fewer cycles with 2.67KB of
// extra state should net a sub-1% chip-energy saving, not a cost.
func TestACICEnergyBand(t *testing.T) {
	p := DefaultParams()
	base := NewAccount(p)
	base.SetRun(1_000_000, 1_000_000)
	base.AddStructure("l1i", 64*8*(64*8+63), 170_000)

	acic := NewAccount(p)
	acic.SetRun(978_000, 1_000_000) // 1.0223 speedup
	acic.AddStructure("l1i", 64*8*(64*8+63), 170_000)
	acic.AddStructure("ifilter", 9200, 170_000)
	acic.AddStructure("cshr", 7680, 170_000)
	acic.AddStructure("predictor", 4976, 30_000)

	d := Delta(base, acic)
	if d >= 0 {
		t.Errorf("ACIC energy delta = %.4f, want a saving", d)
	}
	if d < -0.03 {
		t.Errorf("ACIC energy delta = %.4f, implausibly large saving", d)
	}
}

func TestDeltaZeroBaseline(t *testing.T) {
	if Delta(NewAccount(DefaultParams()), NewAccount(DefaultParams())) != 0 {
		t.Error("zero baseline should not divide by zero")
	}
}
