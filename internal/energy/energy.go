// Package energy is the analytic chip-energy model standing in for the
// paper's McPAT + CACTI 7 (22nm) power pack. It estimates per-access and
// leakage energy for each SRAM structure from its size, and combines them
// with a core-activity proxy so that the paper's §III-D claim — ACIC's
// added structures cost less energy than its runtime reduction saves — can
// be evaluated quantitatively.
//
// Absolute joules are not meaningful here (we have no layout); what the
// model preserves is the *ratio* machinery: energy scales with access
// counts, leakage scales with bits held over the measured cycles, and the
// i-cache subsystem is a few percent of chip power, so a ~2% speedup yields
// a sub-1% chip-energy saving — the paper's 0.63% band.
package energy

// Params hold the energy coefficients (arbitrary units calibrated to
// CACTI-like scaling: read energy grows ~sqrt(size), leakage ~size).
type Params struct {
	// ReadPJPerSqrtBit is the dynamic read cost factor of a structure.
	ReadPJPerSqrtBit float64
	// LeakPWPerBit is the static leakage per bit per cycle.
	LeakPWPerBit float64
	// CorePJPerInst approximates the rest-of-core energy per retired
	// instruction (dominates total chip energy).
	CorePJPerInst float64
	// CorePJPerCycle approximates clock/leakage cost per cycle.
	CorePJPerCycle float64
}

// DefaultParams gives coefficients that put the L1i subsystem at a few
// percent of chip energy, as in McPAT for a Sunny-Cove-class core: dynamic
// core energy scales with retired work, static/clock energy with cycles
// (~35-40% of the total), and the SRAM structures are small against both.
// This is the proportion that makes the paper's §III-D arithmetic work: a
// ~2% cycle reduction nets a fraction-of-a-percent chip-energy saving even
// after paying for 2.67KB of new state.
func DefaultParams() Params {
	return Params{
		ReadPJPerSqrtBit: 0.0001,
		LeakPWPerBit:     1e-10,
		CorePJPerInst:    1.0,
		CorePJPerCycle:   0.6,
	}
}

// Structure is one SRAM structure's activity over a run.
type Structure struct {
	Name     string
	Bits     int
	Accesses uint64
}

// Account is a run's energy ledger.
type Account struct {
	params     Params
	structures []Structure
	cycles     int64
	insts      int64
}

// NewAccount creates a ledger with the given parameters.
func NewAccount(p Params) *Account { return &Account{params: p} }

// AddStructure records a structure's size and access count.
func (a *Account) AddStructure(name string, bits int, accesses uint64) {
	a.structures = append(a.structures, Structure{Name: name, Bits: bits, Accesses: accesses})
}

// SetRun records the run length.
func (a *Account) SetRun(cycles, insts int64) { a.cycles, a.insts = cycles, insts }

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// StructureEnergy returns the dynamic+leakage energy of structure i.
func (a *Account) StructureEnergy(i int) float64 {
	s := a.structures[i]
	dyn := float64(s.Accesses) * a.params.ReadPJPerSqrtBit * sqrt(float64(s.Bits))
	leak := float64(a.cycles) * a.params.LeakPWPerBit * float64(s.Bits)
	return dyn + leak
}

// Total returns the total chip energy of the run: core activity plus all
// registered structures.
func (a *Account) Total() float64 {
	total := float64(a.insts)*a.params.CorePJPerInst + float64(a.cycles)*a.params.CorePJPerCycle
	for i := range a.structures {
		total += a.StructureEnergy(i)
	}
	return total
}

// Delta returns the fractional chip-energy change of this account versus a
// baseline account (negative = this run saves energy).
func Delta(baseline, variant *Account) float64 {
	b := baseline.Total()
	if b == 0 {
		return 0
	}
	return (variant.Total() - b) / b
}
