// Package acic is a pure-Go reproduction of "ACIC: Admission-Controlled
// Instruction Cache" (HPCA 2023): the ACIC mechanism itself (i-Filter,
// two-level admission predictor, CSHR), every baseline scheme the paper
// compares against, and the trace-driven CPU/memory-hierarchy simulator the
// evaluation runs on.
//
// The implementation lives under internal/; the public surfaces are the
// three command-line tools (cmd/acic-sim, cmd/acic-bench, cmd/acic-trace),
// the runnable examples (examples/), and the benchmark harness
// (bench_test.go) that regenerates every table and figure of the paper.
// Simulations execute through a plan/execute/render engine
// (internal/experiments/engine): figures declare their cell sets, the
// engine runs the deduplicated plan on a per-core worker pool with an
// optional persistent result cache, and rendering from completed results
// keeps output byte-identical at any worker count.
// See README.md for a tour and DESIGN.md for the system inventory and
// per-experiment index.
package acic
