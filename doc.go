// Package acic is a pure-Go reproduction of "ACIC: Admission-Controlled
// Instruction Cache" (HPCA 2023): the ACIC mechanism itself (i-Filter,
// two-level admission predictor, CSHR), every baseline scheme the paper
// compares against, and the trace-driven CPU/memory-hierarchy simulator the
// evaluation runs on.
//
// The implementation lives under internal/; the public surfaces are the
// three command-line tools (cmd/acic-sim, cmd/acic-bench, cmd/acic-trace),
// the runnable examples (examples/), and the benchmark harness
// (bench_test.go) that regenerates every table and figure of the paper.
// See README.md for a tour and DESIGN.md for the system inventory and
// per-experiment index.
package acic
