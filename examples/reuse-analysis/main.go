// Reuse analysis: characterize the burstiness of the instruction stream the
// way the paper's motivation section does — the Fig 1a reuse-distance
// distribution, the Fig 1b Markov chain, and burst statistics.
//
//	go run ./examples/reuse-analysis [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"acic/internal/analysis"
	"acic/internal/stats"
	"acic/internal/workload"
)

func main() {
	app := "media-streaming"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, ok := workload.ByName(app)
	if !ok {
		log.Fatalf("unknown workload %q", app)
	}
	tr := workload.Generate(prof, 300_000)

	refs := analysis.InstBlockRefs(tr)
	dists := analysis.ReuseDistances(refs)
	fr := analysis.Distribution(dists, analysis.Fig1aEdges)

	labels := []string{"0", "1-16", "16-512", "512-1024", "1024-10000", ">10000"}
	tbl := &stats.Table{Header: []string{"reuse distance", "fraction"}}
	for i, f := range fr {
		tbl.AddRow(labels[i], stats.Percent(f))
	}
	fmt.Printf("%s reuse-distance distribution (Fig 1a granularity):\n%s\n", app, tbl.String())

	chain := analysis.MarkovChain(refs, analysis.Fig1aEdges)
	mt := &stats.Table{Header: append([]string{"from\\to"}, labels...)}
	for i, row := range chain {
		cells := []any{labels[i]}
		for _, p := range row {
			cells = append(cells, fmt.Sprintf("%.3f", p))
		}
		mt.AddRow(cells...)
	}
	fmt.Printf("reuse-distance Markov chain (Fig 1b):\n%s\n", mt.String())

	bs := analysis.Bursts(tr.BlockAccesses(), 16)
	fmt.Printf("bursts at the i-Filter threshold (16): %d bursts, mean length %.2f block accesses, %.1f%% of accesses intra-burst\n",
		bs.Bursts, bs.MeanLength, 100*bs.FracInBurst)
}
