// Quickstart: simulate one datacenter workload on the baseline LRU i-cache
// and on ACIC, and print the headline metrics (speedup and L1i MPKI
// reduction). This is the minimal end-to-end use of the library:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"acic/internal/experiments"
	"acic/internal/workload"
)

func main() {
	prof, ok := workload.ByName("media-streaming")
	if !ok {
		log.Fatal("profile not found")
	}

	// Prepare generates the synthetic trace, annotates its branches with
	// the TAGE/BTB/RAS front end, and builds the next-use oracle.
	w := experiments.Prepare(prof, 400_000)
	fmt.Printf("workload %s: %d instructions, %d-block code footprint\n",
		prof.Name, w.Trace.Len(), w.Trace.Footprint())

	opts := experiments.DefaultOptions() // FDP platform, 10% warmup
	base, err := experiments.Run(w, experiments.Baseline, opts)
	if err != nil {
		log.Fatal(err)
	}
	acic, err := experiments.Run(w, "acic", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline (LRU+FDP): %d cycles, IPC %.3f, L1i MPKI %.2f\n",
		base.Cycles, base.IPC(), base.MPKI())
	fmt.Printf("ACIC:               %d cycles, IPC %.3f, L1i MPKI %.2f\n",
		acic.Cycles, acic.IPC(), acic.MPKI())
	fmt.Printf("speedup %.4f, MPKI reduction %.2f%%\n",
		experiments.Speedup(base, acic), 100*experiments.MPKIReduction(base, acic))
}
