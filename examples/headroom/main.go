// Headroom: compute the exact fully-associative LRU miss-ratio curve for a
// workload (Mattson stack analysis) and its working-set sizes. This is the
// §IV-F question — "would the ACIC real estate be better spent on more
// capacity?" — answered per application: a flat curve around 32KB with the
// drop far to the right means capacity cannot buy what discretion can.
//
//	go run ./examples/headroom [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"acic/internal/analysis"
	"acic/internal/stats"
	"acic/internal/trace"
	"acic/internal/workload"
)

func main() {
	app := "media-streaming"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, ok := workload.ByName(app)
	if !ok {
		log.Fatalf("unknown workload %q", app)
	}
	tr := workload.Generate(prof, 400_000)
	blocks := tr.BlockAccesses()

	capacities := []int{64, 128, 256, 512, 576, 768, 1024, 2048, 4096, 8192}
	curve := analysis.MissRatioCurve(blocks, capacities)
	t := &stats.Table{Header: []string{"capacity", "size", "LRU miss ratio"}}
	for i, c := range capacities {
		t.AddRow(c, fmt.Sprintf("%dKB", c*trace.BlockSize/1024), stats.Percent(curve[i]))
	}
	fmt.Printf("%s: fully-associative LRU miss-ratio curve (block accesses: %d)\n%s\n",
		app, len(blocks), t.String())

	for _, f := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("%2.0f%% working set: %d blocks (%d KB)\n",
			f*100, analysis.WorkingSet(blocks, f),
			analysis.WorkingSet(blocks, f)*trace.BlockSize/1024)
	}
}
