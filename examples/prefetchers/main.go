// Prefetchers: compare the LRU baseline and ACIC under every implemented
// instruction prefetcher (none, next-line, stream, entangling, FDP),
// showing how admission control composes with prefetching — the paper's
// complementarity claim (§II, §IV-H4).
//
//	go run ./examples/prefetchers [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"acic/internal/experiments"
	"acic/internal/stats"
	"acic/internal/workload"
)

func main() {
	app := "data-caching"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, ok := workload.ByName(app)
	if !ok {
		log.Fatalf("unknown workload %q", app)
	}
	w := experiments.Prepare(prof, 400_000)

	t := &stats.Table{Header: []string{"prefetcher", "LRU MPKI", "ACIC MPKI", "ACIC speedup", "ACIC MPKI red."}}
	for _, pf := range []string{"none", "next-line", "stream", "entangling", "fdp"} {
		opts := experiments.DefaultOptions()
		opts.Prefetcher = pf
		base, err := experiments.Run(w, experiments.Baseline, opts)
		if err != nil {
			log.Fatal(err)
		}
		acic, err := experiments.Run(w, "acic", opts)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(pf,
			fmt.Sprintf("%.2f", base.MPKI()),
			fmt.Sprintf("%.2f", acic.MPKI()),
			fmt.Sprintf("%.4f", experiments.Speedup(base, acic)),
			stats.Percent(experiments.MPKIReduction(base, acic)))
	}
	fmt.Printf("%s: ACIC under each prefetcher\n%s", app, t.String())
}
