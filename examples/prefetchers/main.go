// Prefetchers: compare the LRU baseline and ACIC under every implemented
// instruction prefetcher (none, next-line, stream, entangling, FDP),
// showing how admission control composes with prefetching — the paper's
// complementarity claim (§II, §IV-H4). All ten (prefetcher, scheme) cells
// are planned up front and simulated in parallel.
//
//	go run ./examples/prefetchers [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"acic/internal/experiments"
	"acic/internal/stats"
)

func main() {
	app := "data-caching"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	s := experiments.NewSuite(400_000)

	platforms := experiments.Prefetchers()
	var plan []experiments.Cell
	for _, pf := range platforms {
		plan = append(plan, experiments.CrossCells([]string{app}, []string{experiments.Baseline, "acic"}, pf)...)
	}
	if err := s.Require(plan...); err != nil {
		log.Fatal(err)
	}

	t := &stats.Table{Header: []string{"prefetcher", "LRU MPKI", "ACIC MPKI", "ACIC speedup", "ACIC MPKI red."}}
	for _, pf := range platforms {
		base, err := s.Result(app, experiments.Baseline, pf)
		if err != nil {
			log.Fatal(err)
		}
		acic, err := s.Result(app, "acic", pf)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(pf,
			fmt.Sprintf("%.2f", base.MPKI()),
			fmt.Sprintf("%.2f", acic.MPKI()),
			fmt.Sprintf("%.4f", experiments.Speedup(base, acic)),
			stats.Percent(experiments.MPKIReduction(base, acic)))
	}
	fmt.Printf("%s: ACIC under each prefetcher\n%s", app, t.String())
}
