// Sensitivity sweep: vary ACIC's key parameters (i-Filter slots, HRT size,
// history width, PT counter width, CSHR tag width) on one workload, in the
// spirit of the paper's Fig 15.
//
//	go run ./examples/sensitivity [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"acic/internal/core"
	"acic/internal/experiments"
	"acic/internal/icache"
	"acic/internal/policy"
	"acic/internal/stats"
	"acic/internal/workload"
)

func main() {
	app := "media-streaming"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, ok := workload.ByName(app)
	if !ok {
		log.Fatalf("unknown workload %q", app)
	}
	w := experiments.Prepare(prof, 300_000)
	opts := experiments.DefaultOptions()
	base, err := experiments.Run(w, experiments.Baseline, opts)
	if err != nil {
		log.Fatal(err)
	}

	tbl := &stats.Table{Header: []string{"variant", "speedup", "MPKI reduction", "admit%"}}
	for _, v := range experiments.Fig15Variants {
		cc := core.DefaultConfig()
		v.Mutate(&cc)
		sub := icache.MustNew(icache.Config{
			Sets: 64, Ways: 8, Policy: policy.NewLRU(), ACIC: &cc,
		})
		res, err := experiments.RunSubsystem(w, sub, opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(v.Name,
			fmt.Sprintf("%.4f", experiments.Speedup(base, res)),
			stats.Percent(experiments.MPKIReduction(base, res)),
			fmt.Sprintf("%.1f", 100*sub.ACIC().AdmitFraction()))
	}
	fmt.Printf("%s ACIC sensitivity (Fig 15 axes):\n%s", app, tbl.String())
}
