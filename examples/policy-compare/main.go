// Policy comparison: run every Fig 10 scheme on one workload and print the
// speedup/MPKI table — a single-application slice of the paper's headline
// result. The schemes are planned as one cell batch and simulated in
// parallel on the suite's worker pool.
//
//	go run ./examples/policy-compare [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"acic/internal/experiments"
	"acic/internal/stats"
)

func main() {
	app := "web-search"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	s := experiments.NewSuite(400_000)

	// Plan: the baseline plus every Fig 10 scheme. Execute: one parallel
	// batch. Render: rows in plot order from the completed store.
	schemes := append([]string{experiments.Baseline}, experiments.Fig10Schemes...)
	if err := s.Require(experiments.CrossCells([]string{app}, schemes, "fdp")...); err != nil {
		log.Fatal(err)
	}

	base, err := s.Result(app, experiments.Baseline, "fdp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: baseline LRU+FDP: MPKI %.2f, IPC %.3f\n\n", app, base.MPKI(), base.IPC())

	tbl := &stats.Table{Header: []string{"scheme", "speedup", "MPKI", "MPKI reduction"}}
	for _, scheme := range experiments.Fig10Schemes {
		res, err := s.Result(app, scheme, "fdp")
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(scheme,
			fmt.Sprintf("%.4f", experiments.Speedup(base, res)),
			fmt.Sprintf("%.2f", res.MPKI()),
			stats.Percent(experiments.MPKIReduction(base, res)))
	}
	fmt.Print(tbl.String())
}
