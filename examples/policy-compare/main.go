// Policy comparison: run every Fig 10 scheme on one workload and print the
// speedup/MPKI table — a single-application slice of the paper's headline
// result.
//
//	go run ./examples/policy-compare [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"acic/internal/experiments"
	"acic/internal/stats"
	"acic/internal/workload"
)

func main() {
	app := "web-search"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	prof, ok := workload.ByName(app)
	if !ok {
		log.Fatalf("unknown workload %q", app)
	}
	w := experiments.Prepare(prof, 400_000)
	opts := experiments.DefaultOptions()

	base, err := experiments.Run(w, experiments.Baseline, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: baseline LRU+FDP: MPKI %.2f, IPC %.3f\n\n", app, base.MPKI(), base.IPC())

	tbl := &stats.Table{Header: []string{"scheme", "speedup", "MPKI", "MPKI reduction"}}
	for _, scheme := range experiments.Fig10Schemes {
		res, err := experiments.Run(w, scheme, opts)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(scheme,
			fmt.Sprintf("%.4f", experiments.Speedup(base, res)),
			fmt.Sprintf("%.2f", res.MPKI()),
			stats.Percent(experiments.MPKIReduction(base, res)))
	}
	fmt.Print(tbl.String())
}
