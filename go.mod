module acic

go 1.24
